"""Versioned model checkpoints: one ``.npz``, zero caller-side config.

A checkpoint bundles everything a fresh process needs to serve a
trained :class:`~repro.core.ComparativeModel`:

* the flat weight state dict (the arrays of ``Module.state_dict``),
* the architecture config (``encoder_kind``, dims, layers, ...),
* the node vocabulary (so featurization is bit-identical to training),
* free-form user metadata (training accuracy, corpus tag, ...),

all inside the single archive, using the JSON metadata header of
:mod:`repro.nn.serialize`. ``load_checkpoint(path)`` therefore
reconstructs a ready-to-predict model with no sidecar files and no
re-specified hyper-parameters — the property the serving layer depends
on for hot checkpoint swaps.

The format is versioned (``CHECKPOINT_VERSION``); loaders reject
checkpoints from a *newer* format than they understand rather than
mis-reading them.
"""

from __future__ import annotations

from pathlib import Path

from ..core.features import TreeFeaturizer
from ..core.model import ComparativeModel, model_from_config
from ..lang.vocab import NodeVocab
from ..nn.serialize import load_state_with_meta, save_state

__all__ = ["save_checkpoint", "load_checkpoint", "read_checkpoint_meta",
           "NotACheckpointError", "CHECKPOINT_FORMAT", "CHECKPOINT_VERSION"]

CHECKPOINT_FORMAT = "repro-model-checkpoint"
CHECKPOINT_VERSION = 1


class NotACheckpointError(ValueError):
    """The archive is a plain state dict, not a versioned checkpoint.

    Distinct from other ``ValueError``s (e.g. a *newer-version*
    checkpoint) so callers can fall back to legacy formats without
    masking real diagnostics.
    """


def save_checkpoint(model: ComparativeModel, path,
                    extra: dict | None = None) -> Path:
    """Write ``model`` (weights + config + vocab) to one ``.npz``.

    ``model`` must carry the ``config`` dict that :func:`~repro.core.build_model`
    attaches; hand-assembled models need to set it before checkpointing.
    ``extra`` is any JSON-serializable user metadata (e.g. eval
    accuracy); it is returned verbatim by :func:`read_checkpoint_meta`.
    Returns the normalized path actually written.
    """
    config = getattr(model, "config", None)
    if not isinstance(config, dict):
        raise ValueError(
            "model has no .config dict; build it with build_model()/"
            "model_from_config() or set model.config before checkpointing")
    meta = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "model": dict(config),
        "vocab": model.featurizer.vocab.to_payload(),
        "extra": dict(extra) if extra else {},
    }
    return save_state(model.state_dict(), path, meta=meta)


def _validated_meta(meta: dict | None, path) -> dict:
    if meta is None or meta.get("format") != CHECKPOINT_FORMAT:
        raise NotACheckpointError(
            f"{path} is not a {CHECKPOINT_FORMAT} archive (plain state "
            "dicts load via repro.nn.serialize.load_state)")
    version = meta.get("version")
    if not isinstance(version, int) or version > CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint version {version!r} is newer than this loader "
            f"(supports <= {CHECKPOINT_VERSION})")
    return meta


def load_checkpoint(path) -> ComparativeModel:
    """Rebuild a ready model from a checkpoint written by
    :func:`save_checkpoint` — architecture, vocabulary, and weights all
    come from the archive."""
    state, meta = load_state_with_meta(path)
    meta = _validated_meta(meta, path)
    vocab = NodeVocab.from_payload(meta["vocab"])
    featurizer = TreeFeaturizer(vocab=vocab)
    model = model_from_config(meta["model"], featurizer=featurizer)
    model.load_state_dict(state)
    model.eval()
    return model


def read_checkpoint_meta(path) -> dict:
    """The checkpoint's metadata header (no model reconstruction)."""
    _, meta = load_state_with_meta(path)
    return _validated_meta(meta, path)

"""Canonical-AST keys and the bounded LRU embedding cache.

The model never sees identifier names, literal values, whitespace or
comments — only simplified-AST node *kinds* and topology
(:mod:`repro.lang.simplify`). Two submissions that agree on those have
bit-identical embeddings, so the serving cache keys on a digest of
exactly that pair: the vocabulary-ID sequence (pre-order) plus the
parent array of the evaluation schedule. Reformatted or α-renamed
resubmissions — the common case in a development loop — are cache hits
without ever touching the encoder.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from threading import Lock

import numpy as np

from ..core.features import TreeFeatures
from ..obs.metrics import MetricsRegistry

__all__ = ["canonical_key", "LruCache"]


def canonical_key(features: TreeFeatures) -> str:
    """Digest of the canonicalized AST (kinds + topology).

    Pre-order numbering makes the ``(node_ids, parent)`` pair a
    canonical form: any two sources with the same simplified tree
    produce byte-identical arrays here.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(features.node_ids,
                                       dtype=np.int64).tobytes())
    digest.update(b"|")
    digest.update(np.ascontiguousarray(features.schedule.parent,
                                       dtype=np.int64).tobytes())
    return digest.hexdigest()


class LruCache:
    """Thread-safe bounded LRU mapping (used for cached embeddings).

    ``get`` refreshes recency; inserting beyond ``capacity`` evicts the
    least-recently-used entry. ``capacity=0`` disables caching (every
    lookup misses) without callers needing a special case.

    ``admit_max_cost`` is the admission policy: a ``put`` whose ``cost``
    exceeds it is counted and dropped instead of inserted, so one giant
    entry (a huge AST's embedding) cannot evict a whole working set of
    small ones. ``None`` admits everything; entries whose ``cost`` the
    caller does not know are always admitted.

    Counters live on a :class:`repro.obs.metrics.MetricsRegistry`
    (shared via ``registry``, private when omitted); ``hits`` /
    ``misses`` / ``rejected`` stay readable as attributes and
    ``stats()`` keeps its historical keys — both are now views over the
    registry families.
    """

    def __init__(self, capacity: int = 1024,
                 admit_max_cost: int | None = None,
                 registry: MetricsRegistry | None = None):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if admit_max_cost is not None and admit_max_cost < 1:
            raise ValueError("admit_max_cost must be positive (or None)")
        self.capacity = capacity
        self.admit_max_cost = admit_max_cost
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self._lock = Lock()
        self.registry = registry or MetricsRegistry()
        # get() is the hottest call in the serving tier, so it counts
        # with plain ints under the lock it already holds; _publish()
        # pushes the totals into the registry counters whenever anyone
        # actually reads them (stats(), a scrape, a snapshot poll)
        self._hits_n = 0
        self._misses_n = 0
        self._rejected_n = 0
        self._published = {"hits": 0, "misses": 0, "rejected": 0}
        self._hit_ctr = self.registry.counter(
            "repro_serve_cache_hits_total",
            "embedding cache lookups served from cache").labels()
        self._miss_ctr = self.registry.counter(
            "repro_serve_cache_misses_total",
            "embedding cache lookups that required an encode").labels()
        self._rejected_ctr = self.registry.counter(
            "repro_serve_cache_rejected_total",
            "inserts dropped by the admission policy").labels()
        self._size_gauge = self.registry.gauge(
            "repro_serve_cache_size", "entries currently cached")
        self.registry.gauge(
            "repro_serve_cache_capacity", "configured cache capacity",
            agg="last").set(capacity)

    def _publish(self) -> None:
        """Fold the int counters into the registry families (delta-wise,
        so repeated publishes are idempotent)."""
        with self._lock:
            totals = {"hits": self._hits_n, "misses": self._misses_n,
                      "rejected": self._rejected_n}
            for name, child in (("hits", self._hit_ctr),
                                ("misses", self._miss_ctr),
                                ("rejected", self._rejected_ctr)):
                delta = totals[name] - self._published[name]
                if delta:
                    child.inc(delta)
                    self._published[name] = totals[name]
            self._size_gauge.set(len(self._data))

    @property
    def hits(self) -> int:
        return self._hits_n

    @property
    def misses(self) -> int:
        return self._misses_n

    @property
    def rejected(self) -> int:
        return self._rejected_n

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: str):
        """Value for ``key`` or ``None``; updates recency and counters."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits_n += 1
                return self._data[key]
            self._misses_n += 1
            return None

    def put(self, key: str, value, cost: int | None = None) -> None:
        """Insert ``value`` unless the admission policy rejects it.

        ``cost`` is the caller's size measure (node count for embedding
        entries); it is only compared against ``admit_max_cost``, not
        stored.
        """
        if self.capacity == 0:
            return
        if (self.admit_max_cost is not None and cost is not None
                and cost > self.admit_max_cost):
            with self._lock:
                self._rejected_n += 1
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        """Historical stats view — keys unchanged; also publishes the
        hot-path counters into the registry families."""
        self._publish()
        hits, misses, rejected = self.hits, self.misses, self.rejected
        with self._lock:
            size = len(self._data)
        total = hits + misses
        return {
            "size": size, "capacity": self.capacity,
            "hits": hits, "misses": misses,
            "hit_rate": (hits / total) if total else 0.0,
            "admit_max_cost": self.admit_max_cost,
            "rejected": rejected,
        }

"""Canonical-AST keys and the bounded LRU embedding cache.

The model never sees identifier names, literal values, whitespace or
comments — only simplified-AST node *kinds* and topology
(:mod:`repro.lang.simplify`). Two submissions that agree on those have
bit-identical embeddings, so the serving cache keys on a digest of
exactly that pair: the vocabulary-ID sequence (pre-order) plus the
parent array of the evaluation schedule. Reformatted or α-renamed
resubmissions — the common case in a development loop — are cache hits
without ever touching the encoder.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from threading import Lock

import numpy as np

from ..core.features import TreeFeatures

__all__ = ["canonical_key", "LruCache"]


def canonical_key(features: TreeFeatures) -> str:
    """Digest of the canonicalized AST (kinds + topology).

    Pre-order numbering makes the ``(node_ids, parent)`` pair a
    canonical form: any two sources with the same simplified tree
    produce byte-identical arrays here.
    """
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(features.node_ids,
                                       dtype=np.int64).tobytes())
    digest.update(b"|")
    digest.update(np.ascontiguousarray(features.schedule.parent,
                                       dtype=np.int64).tobytes())
    return digest.hexdigest()


class LruCache:
    """Thread-safe bounded LRU mapping (used for cached embeddings).

    ``get`` refreshes recency; inserting beyond ``capacity`` evicts the
    least-recently-used entry. ``capacity=0`` disables caching (every
    lookup misses) without callers needing a special case.

    ``admit_max_cost`` is the admission policy: a ``put`` whose ``cost``
    exceeds it is counted and dropped instead of inserted, so one giant
    entry (a huge AST's embedding) cannot evict a whole working set of
    small ones. ``None`` admits everything; entries whose ``cost`` the
    caller does not know are always admitted.
    """

    def __init__(self, capacity: int = 1024,
                 admit_max_cost: int | None = None):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        if admit_max_cost is not None and admit_max_cost < 1:
            raise ValueError("admit_max_cost must be positive (or None)")
        self.capacity = capacity
        self.admit_max_cost = admit_max_cost
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def get(self, key: str):
        """Value for ``key`` or ``None``; updates recency and counters."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: str, value, cost: int | None = None) -> None:
        """Insert ``value`` unless the admission policy rejects it.

        ``cost`` is the caller's size measure (node count for embedding
        entries); it is only compared against ``admit_max_cost``, not
        stored.
        """
        if self.capacity == 0:
            return
        if (self.admit_max_cost is not None and cost is not None
                and cost > self.admit_max_cost):
            with self._lock:
                self.rejected += 1
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "size": len(self._data), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
                "admit_max_cost": self.admit_max_cost,
                "rejected": self.rejected,
            }

"""Deterministic fault injection for the serving cluster.

The chaos suite does not "hope" a worker dies at an interesting moment —
it *schedules* the death. A :class:`FaultPlan` is a JSON-serializable
list of fault specs that a worker process evaluates on every request it
handles::

    FaultPlan([
        {"action": "slow", "after_requests": 3, "ms": 40, "every": 2},
        {"action": "kill", "after_requests": 10},
    ])

* ``action`` — what to inject:
    * ``"kill"``  — die instantly (``os._exit``), simulating a crash /
      OOM-kill; the supervisor sees pipe EOF exactly as for ``kill -9``;
    * ``"hang"``  — stop responding without dying (the worker sleeps
      far past every deadline), simulating a wedged process that only
      health-check timeouts can detect;
    * ``"slow"``  — sleep ``ms`` (±``jitter_ms``) before answering,
      simulating degraded workers for deadline/overload tests.
* ``after_requests`` — the 1-based request count on which the fault
  first fires. Counting is per worker process and includes only real
  requests (supervisor pings/stats are exempt, so health checks measure
  the fault rather than perturb it).
* ``every`` — for ``slow``: re-fire each ``every`` requests after the
  first (default: every request from ``after_requests`` on).

Determinism discipline (same as training resume): any randomness —
currently only the ``slow`` jitter — comes from a ``random.Random``
seeded by the plan's ``seed``, so a plan replays identically.

:func:`corrupt_checkpoint` is the file-level fault: it deterministically
flips bytes in a checkpoint archive so hot-swap validation must reject
it (the graceful-degradation path the chaos test drives).
"""

from __future__ import annotations

import json
import os
import random
import time

__all__ = ["FaultPlan", "corrupt_checkpoint"]

_ACTIONS = ("kill", "hang", "slow")
#: "hang" sleeps this long — effectively forever next to any deadline
_HANG_S = 3600.0


class FaultPlan:
    """A deterministic schedule of faults for one worker process."""

    def __init__(self, specs: list[dict] | None = None, seed: int = 0):
        self.specs = [dict(s) for s in (specs or [])]
        self.seed = int(seed)
        for spec in self.specs:
            if spec.get("action") not in _ACTIONS:
                raise ValueError(f"unknown fault action "
                                 f"{spec.get('action')!r} (one of {_ACTIONS})")
            if int(spec.get("after_requests", 0)) < 1:
                raise ValueError("fault needs after_requests >= 1")
        self._rng = random.Random(self.seed)
        self._handled = 0

    def __bool__(self) -> bool:
        return bool(self.specs)

    # -- wire format ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps({"seed": self.seed, "specs": self.specs})

    @classmethod
    def from_json(cls, payload: str | None) -> "FaultPlan":
        if not payload:
            return cls([])
        decoded = json.loads(payload)
        return cls(decoded.get("specs", []), seed=decoded.get("seed", 0))

    # -- the injection point -------------------------------------------
    def on_request(self) -> None:
        """Called by the worker loop once per real request, *before*
        handling it. May sleep, may never return."""
        if not self.specs:
            return
        self._handled += 1
        for spec in self.specs:
            first = int(spec["after_requests"])
            if self._handled < first:
                continue
            action = spec["action"]
            if action == "kill":
                # os._exit, not sys.exit: a crash does not run atexit
                # hooks or flush buffers, and neither should we
                os._exit(9)
            elif action == "hang":
                time.sleep(_HANG_S)
            elif action == "slow":
                every = int(spec.get("every", 1))
                if (self._handled - first) % every == 0:
                    delay_ms = float(spec.get("ms", 50.0))
                    jitter_ms = float(spec.get("jitter_ms", 0.0))
                    if jitter_ms:
                        delay_ms += self._rng.uniform(-jitter_ms, jitter_ms)
                    time.sleep(max(delay_ms, 0.0) / 1000.0)


def corrupt_checkpoint(path, seed: int = 0, flips: int = 64) -> None:
    """Deterministically flip ``flips`` bytes of the archive in place.

    The damage lands in the zip central directory *and* member data
    (positions are drawn across the whole file), so both
    ``read_checkpoint_meta`` and a full load fail loudly — never a
    silently-wrong model. Used by the chaos suite to prove the hot-swap
    watcher rejects a torn/corrupted checkpoint and keeps serving the
    old version.
    """
    path = os.fspath(path)
    data = bytearray(open(path, "rb").read())
    if not data:
        raise ValueError(f"{path} is empty")
    rng = random.Random(seed)
    for _ in range(min(flips, len(data))):
        position = rng.randrange(len(data))
        data[position] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(data)

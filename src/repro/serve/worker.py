"""One cluster worker: a ``PredictionService`` behind a pipe.

A worker is a child process of the cluster supervisor. It boots a
service from a checkpoint, announces itself, then answers framed
requests read from **stdin** with framed replies on **stdout** — the
same JSONL protocol as every other front end, wrapped in a one-key
envelope that carries the supervisor's ticket id::

    supervisor -> worker   {"t": "c41", "req": {"op": "embed", ...},
                            "dl": 1754550000.25}        # deadline (unix)
    worker -> supervisor   {"t": "c41", "resp": {"ok": true, ...}}

Boot handshake (first line the worker ever writes):

* success — ``{"hello": {"pid": ..., "model": <checkpoint signature>,
  "encoder": ...}}``; the supervisor only routes to a worker after its
  hello, which is what makes blue/green rotation safe: a replacement
  that cannot load its checkpoint never receives a single ticket.
* failure — ``{"fatal": "<reason>"}`` and exit code 3 (e.g. a corrupt
  checkpoint; the supervisor aborts the swap and keeps the old worker).

Pipes were chosen over sockets deliberately: a worker that dies — even
``kill -9``, even mid-reply — closes its pipe, so the supervisor's
reader sees EOF immediately and can redispatch. There is no heartbeat
race on crash detection; heartbeats (``op: ping`` envelopes with a
``!``-prefixed ticket) exist only to catch the *hung* worker that is
alive but not answering.

Ticket ids starting with ``!`` are supervisor-internal (pings, stats
polls): they bypass fault injection and the request deadline check so
health-checking measures injected faults instead of perturbing them.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

__all__ = ["main"]


def _emit(obj: dict) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.worker",
        description="cluster worker (spawned by the supervisor; speaks "
                    "framed JSONL on stdin/stdout)")
    parser.add_argument("--model", required=True)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--cache-size", type=int, default=1024)
    parser.add_argument("--cache-max-nodes", type=int, default=None)
    parser.add_argument("--cast", action="store_true",
                        help="permit loading a checkpoint whose dtype "
                             "differs from the active backend's "
                             "(REPRO_BACKEND)")
    parser.add_argument("--faults", default=None,
                        help="JSON FaultPlan (chaos testing only)")
    args = parser.parse_args(argv)

    # Import after argparse so --help stays instant; boot errors from
    # here on are reported through the fatal line, never a bare
    # traceback the supervisor would have to scrape.
    from .faults import FaultPlan
    from .protocol import ERR_DEADLINE, error_reply, handle_request
    from .service import PredictionService
    from .checkpoint import checkpoint_signature

    try:
        plan = FaultPlan.from_json(args.faults)
        signature = checkpoint_signature(args.model)
        # threaded=False: the worker is single-threaded by design — the
        # supervisor provides concurrency across workers, and an inline
        # batcher gives maximal fused batches for this worker's queue.
        service = PredictionService.from_checkpoint(
            args.model, cast=args.cast, max_batch=args.max_batch,
            cache_size=args.cache_size,
            cache_max_nodes=args.cache_max_nodes, threaded=False)
    except Exception as error:
        _emit({"fatal": f"{type(error).__name__}: {error}"})
        return 3

    _emit({"hello": {"pid": os.getpid(), "model": signature,
                     "encoder": service.model.config.get("encoder_kind")
                     if isinstance(getattr(service.model, "config", None),
                                   dict) else None}})

    with service:
        for line in sys.stdin:
            if not line.strip():
                continue
            try:
                envelope = json.loads(line)
                ticket = envelope["t"]
                request = envelope["req"]
            except Exception as error:
                # A framing error is a supervisor bug, not client data;
                # surface it but keep serving.
                _emit({"framing_error": f"{type(error).__name__}: {error}"})
                continue
            internal = isinstance(ticket, str) and ticket.startswith("!")
            if internal and request.get("op") == "ping":
                _emit({"t": ticket, "resp": {"ok": True, "pong": True,
                                             "pid": os.getpid()}})
                continue
            if not internal:
                plan.on_request()          # may sleep; may never return
                deadline = envelope.get("dl")
                if deadline is not None and time.time() > float(deadline):
                    # Late already (e.g. we just un-hung): the
                    # supervisor has answered the client; this reply is
                    # dropped there, but replying keeps the accounting
                    # exact instead of leaving a one-sided ticket.
                    _emit({"t": ticket, "resp": error_reply(
                        ERR_DEADLINE, "deadline expired before the "
                        "worker started the request",
                        request_id=request.get("id")
                        if isinstance(request, dict) else None)})
                    continue
            # The supervisor ticket id doubles as the trace id, so a
            # front-door request can be matched to this worker's spans.
            _emit({"t": ticket,
                   "resp": handle_request(service, request,
                                          trace_id=ticket)})
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

"""The JSONL request/response protocol shared by every serving front end.

One request is one JSON object per line; one response is one JSON object
per line. The same handler answers requests whether the transport is

* the ``repro serve`` CLI (stdin/stdout stream or bulk files),
* a cluster worker process (framed over its supervisor pipe), or
* the TCP front door of :mod:`repro.serve.cluster`.

Robustness contract (the reason this module exists as a seam): **no
request can take down the stream**. A malformed JSON line, an unknown
op, a source that fails to parse, an encode error — each produces one
structured error response

    {"ok": false, "error": "<type>: <message>", "code": "<error code>",
     "id": <echoed when present>}

and the loop continues. ``code`` is machine-readable (see the
``ERR_*`` constants); ``error`` stays a human-readable string for
backwards compatibility with pre-cluster clients.
"""

from __future__ import annotations

import json
from contextlib import nullcontext

from .service import RequestSourceError

__all__ = [
    "ERR_BAD_JSON", "ERR_BAD_REQUEST", "ERR_INTERNAL", "ERR_OVERLOADED",
    "ERR_DEADLINE", "ERR_WORKER_FAILED", "ERR_SHUTDOWN",
    "error_reply", "handle_request", "serve_lines", "request_sources",
]

#: the request itself was not a JSON object
ERR_BAD_JSON = "bad_json"
#: the request decoded but cannot be served (unknown op, missing or
#: unparseable source, out-of-range parameter)
ERR_BAD_REQUEST = "bad_request"
#: the service failed while computing a well-formed request
ERR_INTERNAL = "internal"
#: load shedding: the target shard's queue is past its high-water mark
ERR_OVERLOADED = "overloaded"
#: the request's deadline expired before a worker answered
ERR_DEADLINE = "deadline_exceeded"
#: the owning worker died and the bounded retries were exhausted
ERR_WORKER_FAILED = "worker_failed"
#: the server is shutting down; the request was not served
ERR_SHUTDOWN = "shutdown"


def error_reply(code: str, message: str, request_id=None) -> dict:
    """One structured error response (the only error shape we emit)."""
    reply = {"ok": False, "error": message, "code": code}
    if request_id is not None:
        reply["id"] = request_id
    return reply


#: request fields that hold a single source each, in the order a
#: router should prefer them for shard affinity
_SOURCE_FIELDS = ("source", "old", "new", "first", "second")


def request_sources(request: dict) -> list[str]:
    """Every source string a request will need embedded.

    Used by the bulk-mode prewarm pass and by the cluster router (the
    *first* entry decides the shard, so both trees of a ``compare``
    land on the cache that already knows the pair's anchor).
    """
    sources = [request[k] for k in _SOURCE_FIELDS
               if isinstance(request.get(k), str)]
    for list_field in ("sources", "candidates"):
        if isinstance(request.get(list_field), list):
            sources.extend(s for s in request[list_field]
                           if isinstance(s, str))
    if isinstance(request.get("baseline"), str):
        sources.append(request["baseline"])
    return sources


def _error_code_for(error: Exception) -> str:
    """Classify a handler exception into a wire error code.

    Anything raised while *interpreting* the request (bad op, missing
    field, unparseable source, bad parameter) is the client's fault —
    ``bad_request``; everything else is ours — ``internal``.
    """
    if isinstance(error, (RequestSourceError, KeyError, TypeError,
                          ValueError)):
        return ERR_BAD_REQUEST
    return ERR_INTERNAL


def handle_request(service, request: dict, trace_id=None) -> dict:
    """Answer one decoded request against a ``PredictionService``.

    Never raises: every failure becomes a structured error response so
    the surrounding loop — CLI stream, bulk file, or cluster worker —
    keeps serving.

    ``trace_id`` names this request in the service's trace ring (a
    cluster worker passes its supervisor ticket id, so a front-door
    request can be matched to its worker-side span tree); it defaults
    to the request's own ``id``.
    """
    if not isinstance(request, dict):
        return error_reply(ERR_BAD_JSON,
                           f"request must be a JSON object, got "
                           f"{type(request).__name__}")
    response = {"ok": True}
    if "id" in request:
        response["id"] = request["id"]
    if trace_id is None:
        trace_id = request.get("id", "")
    tracer = getattr(service, "tracer", None)
    guard = tracer.trace(trace_id) if tracer is not None else nullcontext()
    with guard as trace:
        if trace is not None and getattr(trace, "sampled", False):
            trace.note(op=request.get("op"))
        try:
            op = request.get("op")
            if op == "embed":
                response["embedding"] = service.embed(
                    request["source"]).tolist()
            elif op == "embed_many":
                response["embeddings"] = service.embed_many(
                    request["sources"]).tolist()
            elif op == "compare" and "old" in request:
                response.update(service.check_regression(
                    request["old"], request["new"],
                    threshold=float(request.get("threshold", 0.5))))
            elif op == "compare":
                response["p_first_slower"] = service.compare(
                    request["first"], request["second"])
            elif op == "rank":
                response["ranking"] = service.rank(
                    request["candidates"], baseline=request.get("baseline"))
            elif op == "stats":
                response["stats"] = service.stats()
            elif op == "metrics":
                snapshot = service.metrics_snapshot()
                if request.get("format") == "prometheus":
                    from ..obs.expose import to_prometheus
                    response["metrics_text"] = to_prometheus(snapshot)
                else:
                    response["metrics"] = snapshot
            elif op == "traces":
                response["traces"] = service.tracer.completed()
            else:
                raise ValueError(f"unknown op {op!r}")
        except Exception as error:  # a bad request must not kill the stream
            response = error_reply(_error_code_for(error),
                                   f"{type(error).__name__}: {error}",
                                   request_id=request.get("id"))
    return response


def serve_lines(service, lines) -> "typing.Iterator[dict]":  # noqa: F821
    """Stream-serve an iterable of JSONL request lines.

    Yields exactly one response per non-blank line — a result or a
    structured error, in input order — regardless of how malformed any
    individual line is. This is the hardened loop behind the CLI's
    stdin mode and the mixed good/bad stream unit tests.
    """
    for line in lines:
        if not line.strip():
            continue
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            yield error_reply(ERR_BAD_JSON, f"bad JSON: {error}")
        else:
            yield handle_request(service, request)

"""Micro-batching: coalesce concurrent encode requests into one forest.

Single-request prediction wastes the fused-forest encoder of PR 1 — a
tree-LSTM sweep over one tree costs nearly as much Python-side schedule
work as a sweep over thirty-two. :class:`MicroBatcher` closes that gap:
requests are enqueued as tickets, and a flush encodes every pending
tree as **one** ``encode_batch`` call (one packed forest), then
demultiplexes the rows back to their tickets.

Two flush triggers, both tunable:

* **size** — a flush fires as soon as ``max_batch`` requests are
  pending;
* **latency** — an incomplete batch is flushed once its oldest request
  has waited ``max_delay_ms`` (the classic deadline trigger, so a lone
  request is never stranded behind a timer that nothing else will
  fill).

The batcher runs in either of two modes:

* **threaded** (default): a daemon worker owns the triggers, so any
  number of client threads can block on ``ticket.result()`` while
  their requests coalesce;
* **inline** (``start=False``): no worker — ``ticket.result()`` (or an
  explicit :meth:`MicroBatcher.flush`) drains everything pending in
  the calling thread. This is what the bulk/file serving path uses:
  submit a whole request file, then resolve, giving maximal batches
  with zero thread handoffs.

Identical items (``id``-equal, which featurizer memoization guarantees
for repeated sources) are encoded once per flush and fanned out.
"""

from __future__ import annotations

import threading
import time

from ..obs.metrics import MetricsRegistry

__all__ = ["MicroBatcher", "Ticket"]

_FLUSH_TRIGGERS = ("size", "latency", "inline", "close")


class Ticket:
    """One pending request; ``result()`` blocks until its flush lands."""

    __slots__ = ("item", "_batcher", "_event", "_value", "_error")

    def __init__(self, item, batcher: "MicroBatcher"):
        self.item = item
        self._batcher = batcher
        self._event = threading.Event()
        self._value = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        """The encoded row for this request's item.

        In inline mode the calling thread performs the flush itself;
        in threaded mode it waits for the worker.
        """
        if not self._event.is_set() and self._batcher._worker is None:
            self._batcher.flush()
        if not self._event.wait(timeout):
            raise TimeoutError("batched encode did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value

    # -- called by the batcher -----------------------------------------
    def _resolve(self, value) -> None:
        self._value = value
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


class MicroBatcher:
    """Accumulate encode requests; flush them as fused batches.

    ``encode_fn(items)`` must return an indexable of ``len(items)``
    rows (e.g. the ``(T, d)`` array of ``encoder.encode_batch``).
    """

    def __init__(self, encode_fn, max_batch: int = 32,
                 max_delay_ms: float = 2.0, start: bool = True,
                 registry: MetricsRegistry | None = None):
        if max_batch < 1:
            raise ValueError("max_batch must be positive")
        if max_delay_ms < 0:
            raise ValueError("max_delay_ms must be non-negative")
        self._encode_fn = encode_fn
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self._pending: list[tuple[Ticket, float]] = []
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._closed = False
        # Counters live on the obs registry (shared via ``registry``,
        # private when omitted); the historical attribute names remain
        # readable as properties and stats() keeps its keys.
        self.registry = registry or MetricsRegistry()
        self._batches = self.registry.counter(
            "repro_serve_batcher_batches_total",
            "fused encode_batch calls").labels()
        self._items = self.registry.counter(
            "repro_serve_batcher_items_total",
            "requests resolved by fused flushes").labels()
        self._unique_items = self.registry.counter(
            "repro_serve_batcher_unique_items_total",
            "distinct trees encoded (after per-flush dedup)").labels()
        # backpressure instrumentation: deepest the queue ever got, and
        # why each flush fired (size cap hit vs latency deadline vs
        # explicit inline drain vs close-time tail drain)
        self._largest_batch = self.registry.gauge(
            "repro_serve_batcher_largest_batch",
            "largest fused batch so far", agg="max").labels()
        self._queue_depth_hwm = self.registry.gauge(
            "repro_serve_batcher_queue_depth_hwm",
            "queue-depth high-water mark", agg="max").labels()
        self._pending_gauge = self.registry.gauge(
            "repro_serve_batcher_pending", "requests queued right now")
        self._flushes = self.registry.counter(
            "repro_serve_batcher_flushes_total",
            "flushes by firing trigger", ("trigger",))
        self._worker: threading.Thread | None = None
        if start:
            self._worker = threading.Thread(target=self._run, daemon=True,
                                            name="repro-serve-batcher")
            self._worker.start()

    # -- historical counter attributes, now registry views -------------
    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def items(self) -> int:
        return int(self._items.value)

    @property
    def unique_items(self) -> int:
        return int(self._unique_items.value)

    @property
    def largest_batch(self) -> int:
        return int(self._largest_batch.value)

    @property
    def queue_depth_hwm(self) -> int:
        return int(self._queue_depth_hwm.value)

    @property
    def flush_triggers(self) -> dict:
        return {t: int(self._flushes.labels(t).value)
                for t in _FLUSH_TRIGGERS}

    # ------------------------------------------------------------------
    def submit(self, item) -> Ticket:
        """Enqueue ``item`` for the next fused flush."""
        ticket = Ticket(item, self)
        with self._wakeup:
            if self._closed:
                raise RuntimeError("batcher is closed")
            self._pending.append((ticket, time.monotonic()))
            depth = len(self._pending)
            self._wakeup.notify_all()
        self._queue_depth_hwm.set_max(depth)
        return ticket

    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    def flush(self) -> int:
        """Drain everything pending now (inline, in the calling thread).

        Returns the number of requests resolved. Batches are still
        capped at ``max_batch`` per ``encode_fn`` call.
        """
        resolved = 0
        while True:
            with self._lock:
                batch = [t for t, _ in self._pending[:self.max_batch]]
                del self._pending[:len(batch)]
            if not batch:
                return resolved
            self._encode_batch(batch, trigger="inline")
            resolved += len(batch)

    def close(self) -> None:
        """Flush the tail and stop the worker (idempotent)."""
        with self._wakeup:
            self._closed = True
            self._wakeup.notify_all()
        if self._worker is not None:
            self._worker.join(timeout=5.0)
            if self._worker.is_alive():
                # still mid-encode: it owns the queue and will drain it
                # (closed is set); flushing here would race it
                return
            self._worker = None
        self.flush()

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Historical stats view — keys unchanged, values read from the
        registry families."""
        batches, items = self.batches, self.items
        with self._lock:
            pending = len(self._pending)
        self._pending_gauge.set(pending)
        return {
            "batches": batches, "items": items,
            "unique_items": self.unique_items,
            "largest_batch": self.largest_batch,
            "mean_batch_size": (items / batches) if batches else 0.0,
            "pending": pending,
            "queue_depth_hwm": self.queue_depth_hwm,
            "flush_triggers": self.flush_triggers,
        }

    # ------------------------------------------------------------------
    def _encode_batch(self, batch: list[Ticket],
                      trigger: str = "inline") -> None:
        """One fused encode for ``batch``, deduplicated and demuxed."""
        slot_of: dict[int, int] = {}
        unique: list = []
        rows: list[int] = []
        for ticket in batch:
            key = id(ticket.item)
            if key not in slot_of:
                slot_of[key] = len(unique)
                unique.append(ticket.item)
            rows.append(slot_of[key])
        try:
            encoded = self._encode_fn(unique)
            # demux inside the failure boundary too: a short or
            # unindexable result must fail this batch, not kill the
            # worker and strand every future ticket
            results = [encoded[row] for row in rows]
        except BaseException as error:  # propagate to every waiter
            for ticket in batch:
                ticket._fail(error)
            return
        self._batches.inc()
        self._items.inc(len(batch))
        self._unique_items.inc(len(unique))
        self._largest_batch.set_max(len(batch))
        self._flushes.labels(trigger).inc()
        for ticket, value in zip(batch, results):
            ticket._resolve(value)

    def _run(self) -> None:
        """Worker loop: wait for work, apply the size/latency triggers."""
        while True:
            with self._wakeup:
                while not self._pending and not self._closed:
                    self._wakeup.wait()
                if self._closed and not self._pending:
                    return
                deadline = self._pending[0][1] + self.max_delay_ms / 1000.0
                while (len(self._pending) < self.max_batch
                       and not self._closed):
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._wakeup.wait(timeout=remaining)
                    if not self._pending:
                        break
                if len(self._pending) >= self.max_batch:
                    trigger = "size"
                elif self._closed:
                    trigger = "close"
                else:
                    trigger = "latency"
                batch = [t for t, _ in self._pending[:self.max_batch]]
                del self._pending[:len(batch)]
            if batch:
                self._encode_batch(batch, trigger=trigger)

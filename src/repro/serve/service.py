"""`PredictionService`: the long-lived facade over model + cache + batcher.

One instance owns a trained :class:`~repro.core.ComparativeModel` (or
loads one from a versioned checkpoint) and answers a stream of embed /
compare / rank queries. Every request follows the same lifecycle::

    source --featurize--> canonical key --cache?--> batcher --forest-->
    embedding --classifier GEMM--> answer

so the encoder — the only expensive stage — runs exactly once per
*distinct canonical AST*, and always inside a fused forest batch.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..core.features import TreeFeatures
from ..core.model import ComparativeModel
from ..nn import backend as nn_backend
from ..nn.tensor import Tensor, no_grad
from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer
from .batcher import MicroBatcher
from .cache import LruCache, canonical_key
from .checkpoint import load_checkpoint

__all__ = ["PredictionService", "RequestSourceError"]


class RequestSourceError(ValueError):
    """One source of a request failed featurization (parse error,
    non-string payload, ...).

    Raised *before* any encoding work happens, so a bad source in the
    middle of an ``embed_many``/``rank`` list costs nothing and leaves
    no half-resolved batcher tickets. Carries which source failed
    (``index``/``label``) and the original exception (``cause``); the
    message embeds the cause's type name so pre-cluster clients that
    string-match on e.g. ``"ParseError"`` keep working.
    """

    def __init__(self, index: int, label: str, cause: Exception):
        self.index = index
        self.label = label
        self.cause = cause
        super().__init__(
            f"{label}: {type(cause).__name__}: {cause}")


class PredictionService:
    """Online comparative-performance prediction over a resident model.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.ComparativeModel`.
    max_batch, max_delay_ms:
        Micro-batcher flush triggers (see :mod:`repro.serve.batcher`).
    cache_size:
        Capacity of the canonical-AST embedding LRU (0 disables).
    cache_max_nodes:
        Admission threshold: embeddings of trees with more AST nodes
        than this are computed but never cached, so one giant tree
        cannot evict a working set of small ones. ``None`` (default)
        admits everything.
    threaded:
        ``True`` starts the background flush worker (interactive /
        multi-client serving); ``False`` runs the batcher inline, which
        the bulk file mode uses to get maximal batches with no threads.
    """

    def __init__(self, model: ComparativeModel, max_batch: int = 32,
                 max_delay_ms: float = 2.0, cache_size: int = 1024,
                 cache_max_nodes: int | None = None,
                 threaded: bool = True,
                 registry: MetricsRegistry | None = None,
                 tracer: Tracer | None = None):
        self.model = model
        model.eval()
        # One registry underneath the whole service: cache and batcher
        # register their families on it, so a single snapshot (and the
        # scrape endpoint serving it) covers every counter the stats()
        # dicts have historically reported.
        self.registry = registry or MetricsRegistry()
        self.tracer = tracer or Tracer()
        # the embed hot path reads the tracer's thread-local directly
        # (one getattr) instead of going through the `active` property
        self._trace_local = self.tracer._local
        self.cache = LruCache(cache_size, admit_max_cost=cache_max_nodes,
                              registry=self.registry)
        self.batcher = MicroBatcher(self._encode_features,
                                    max_batch=max_batch,
                                    max_delay_ms=max_delay_ms,
                                    start=threaded,
                                    registry=self.registry)
        self._requests = self.registry.counter(
            "repro_serve_requests_total", "requests by operation",
            ("op",))
        self._latency = self.registry.histogram(
            "repro_serve_request_latency_seconds",
            "request wall time by operation", ("op",))
        # The request path is latency-critical, so per-op request counts
        # are plain ints under one lock (exactly the pre-registry cost)
        # and _publish_requests() folds them into the registry family
        # whenever anyone reads it. Latency histograms observe directly
        # — a bisect and one child lock is already minimal.
        self._op_counts = {op: 0  # archlint: allow-counter-dict (hot path; published to the registry on every read)
                           for op in ("embed", "compare", "rank")}
        self._counts_lock = threading.Lock()
        self._published_requests = dict(self._op_counts)
        self._requests_by_op = {op: self._requests.labels(op)
                                for op in ("embed", "compare", "rank")}
        self._latency_by_op = {op: self._latency.labels(op)
                               for op in ("embed", "compare", "rank")}
        self._encoded = self.registry.counter(
            "repro_serve_encoded_trees_total",
            "trees pushed through the fused encoder").labels()
        self._encode_seconds = self.registry.counter(
            "repro_serve_encode_seconds_total",
            "wall time spent inside encode_batch").labels()
        self._uptime = self.registry.gauge(
            "repro_serve_uptime_seconds", "seconds since service start",
            agg="last")
        info = nn_backend.describe()
        self.registry.gauge(
            "repro_serve_backend_info", "active kernel backend (labels)",
            ("backend", "dtype"), agg="last").labels(
                str(info["name"]), str(info["dtype"])).set(1)
        # TreeFeaturizer's memo-cache eviction is not thread-safe; all
        # service-side featurization funnels through this lock so the
        # threaded mode really can take concurrent clients.
        self._featurize_lock = threading.Lock()
        self._started = time.monotonic()

    @classmethod
    def from_checkpoint(cls, path, cast: bool = False,
                        **kwargs) -> "PredictionService":
        """Boot a service straight from a versioned checkpoint file.

        ``cast=True`` permits serving a checkpoint whose recorded dtype
        differs from the active backend's (weights are converted on
        load); the default refuses with ``CheckpointDtypeError``.
        """
        return cls(load_checkpoint(path, cast=cast), **kwargs)

    def _count(self, op: str, by: int = 1) -> None:
        with self._counts_lock:
            self._op_counts[op] += by

    def _publish_requests(self) -> dict:
        """Fold the hot-path request counts into the registry family
        (delta-wise, idempotent); returns the current totals."""
        with self._counts_lock:
            totals = dict(self._op_counts)
            deltas = {op: totals[op] - self._published_requests[op]
                      for op in totals}
            self._published_requests = totals   # claim atomically
        for op, delta in deltas.items():
            if delta:
                self._requests_by_op[op].inc(delta)
        return totals

    # ------------------------------------------------------------------
    # the encode stage handed to the batcher
    # ------------------------------------------------------------------
    def _encode_features(self, features_list: list[TreeFeatures]) -> np.ndarray:
        # In inline-batcher mode this runs on the requesting thread, so
        # the span lands in that request's trace; in threaded mode the
        # flush worker has no active trace and the span is a no-op.
        trace = self.tracer.active
        with trace.span("fused_encode") as span:
            start = time.perf_counter()
            with no_grad():
                rows = self.model.encoder.encode_batch(features_list).data.copy()
            elapsed = time.perf_counter() - start
            if trace.sampled:
                span.note(trees=len(features_list))
        self._encode_seconds.inc(elapsed)
        self._encoded.inc(len(features_list))
        return rows

    # ------------------------------------------------------------------
    # embeddings (cache + batcher)
    # ------------------------------------------------------------------
    def _featurize_all(self, sources: list[str],
                       labels: list[str] | None = None) -> list[TreeFeatures]:
        """Featurize every source up front, or raise one
        :class:`RequestSourceError` naming the first bad entry.

        Failing *before* any ticket is submitted keeps the request
        all-or-nothing: no encode work is spent on a list that cannot
        be fully answered, and no partial results leak.
        """
        features_list = []
        for i, source in enumerate(sources):
            label = labels[i] if labels is not None else f"source #{i}"
            if not isinstance(source, str):
                raise RequestSourceError(i, label, TypeError(
                    f"expected a source string, got {type(source).__name__}"))
            try:
                with self._featurize_lock:
                    features_list.append(self.model.featurizer(source))
            except Exception as error:
                raise RequestSourceError(i, label, error) from error
        return features_list

    def _cache_pass(self, features_by_row):
        """Phase 2 of an embed: cache lookups, one batcher ticket per
        distinct miss. Returns the output array with hit rows filled."""
        out = np.empty((len(features_by_row),
                        self.model.encoder.output_size))
        tickets: dict[str, object] = {}   # canonical key -> ticket
        node_counts: dict[str, int] = {}  # canonical key -> tree size
        miss_rows: list[tuple[int, str]] = []
        for i, features in enumerate(features_by_row):
            key = canonical_key(features)
            hit = self.cache.get(key)
            if hit is not None:
                out[i] = hit
                continue
            if key not in tickets:
                tickets[key] = self.batcher.submit(features)
                node_counts[key] = features.num_nodes
            miss_rows.append((i, key))
        return out, tickets, node_counts, miss_rows

    def _resolve_misses(self, out, tickets, node_counts, miss_rows):
        """Phase 3: block on the tickets, fill miss rows, feed cache."""
        resolved: dict[str, np.ndarray] = {}
        for i, key in miss_rows:
            if key not in resolved:
                # copy: the resolved row is a view into its flush's
                # whole (B, d) batch array, which a cache entry would
                # otherwise pin for its lifetime
                resolved[key] = np.array(tickets[key].result())
                # node count = admission cost: oversized trees are
                # served but never cached
                self.cache.put(key, resolved[key],
                               cost=node_counts[key])
            out[i] = resolved[key]

    def _embed_sources(self, sources: list[str],
                       labels: list[str] | None = None) -> np.ndarray:
        """Embeddings for ``sources`` (T, d): cache hits cost a lookup,
        misses are submitted together so one fused flush covers them.

        Sampling is decided per request; the unsampled path (the
        overwhelming majority at the default rate) runs the three
        phases inline below with zero span bookkeeping — keep it in
        lockstep with :meth:`_cache_pass` / :meth:`_resolve_misses`,
        which the sampled path wraps in spans.
        """
        trace = getattr(self._trace_local, "trace", None)
        if trace is not None and trace.sampled:
            return self._embed_sources_traced(sources, labels, trace)
        features_by_row = self._featurize_all(sources, labels)
        out = np.empty((len(sources), self.model.encoder.output_size))
        tickets: dict[str, object] = {}   # canonical key -> ticket
        node_counts: dict[str, int] = {}  # canonical key -> tree size
        miss_rows: list[tuple[int, str]] = []
        for i, features in enumerate(features_by_row):
            key = canonical_key(features)
            hit = self.cache.get(key)
            if hit is not None:
                out[i] = hit
                continue
            if key not in tickets:
                tickets[key] = self.batcher.submit(features)
                node_counts[key] = features.num_nodes
            miss_rows.append((i, key))
        if miss_rows:
            self._resolve_misses(out, tickets, node_counts, miss_rows)
        return out

    def _embed_sources_traced(self, sources, labels, trace) -> np.ndarray:
        """The same three phases as :meth:`_embed_sources`, each under a
        span of the request's sampled trace."""
        with trace.span("featurize") as span:
            features_by_row = self._featurize_all(sources, labels)
            span.note(sources=len(sources))
        with trace.span("cache_lookup") as span:
            out, tickets, node_counts, miss_rows = \
                self._cache_pass(features_by_row)
            span.note(hits=len(sources) - len(miss_rows),
                      misses=len(miss_rows))
        with trace.span("batch_wait"):
            self._resolve_misses(out, tickets, node_counts, miss_rows)
        return out

    def embed(self, source: str) -> np.ndarray:
        """Latent code vector for one source (served from cache when the
        canonical AST was seen before)."""
        self._count("embed")
        start = time.perf_counter()
        row = self._embed_sources([source])[0]
        self._latency_by_op["embed"].observe(time.perf_counter() - start)
        return row

    def embed_many(self, sources: list[str]) -> np.ndarray:
        """Bulk embeddings, (T, d); counts as ``len(sources)`` requests.

        Edge cases are pinned down: an empty list returns an empty
        ``(0, d)`` array (not a numpy broadcasting accident), and a
        source that fails to parse raises :class:`RequestSourceError`
        naming its index *before* any encoding work happens.
        """
        sources = list(sources)
        self._count("embed", len(sources))
        if not sources:
            return np.zeros((0, self.model.encoder.output_size))
        start = time.perf_counter()
        rows = self._embed_sources(sources)
        self._latency_by_op["embed"].observe(time.perf_counter() - start)
        return rows

    def prewarm(self, sources: list[str]) -> int:
        """Fill the embedding cache for ``sources`` in fused batches.

        Used by the bulk serving path: encode every distinct tree of a
        request file up front, then answer the requests from cache.
        Sources the frontend rejects are skipped (the per-request path
        reports their errors). Does not count toward the request
        counters; returns how many trees actually hit the encoder.
        """
        before = int(self._encoded.value)
        parseable = []
        for source in dict.fromkeys(sources):
            try:
                with self._featurize_lock:
                    self.model.featurizer(source)
            except Exception:
                continue
            parseable.append(source)
        if parseable:
            self._embed_sources(parseable)
        return int(self._encoded.value) - before

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def compare(self, first: str, second: str) -> float:
        """P(label=1) = P(first is slower-or-equal), exactly the
        semantics of ``ComparativeModel.predict_probability`` — but the
        two trees go through cache + one fused batch, not two encodes."""
        self._count("compare")
        start = time.perf_counter()
        z = self._embed_sources([first, second])
        with no_grad():
            logit = self.model.classifier.logit(Tensor(z[0]), Tensor(z[1]))
            prob = float(logit.sigmoid().data)
        self._latency_by_op["compare"].observe(time.perf_counter() - start)
        return prob

    def check_regression(self, old_source: str, new_source: str,
                         threshold: float = 0.5) -> dict:
        """The :class:`~repro.core.PerformanceGate` contract: probability
        that the *new* version is slower, plus the flag decision."""
        if not 0.0 < threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")
        prob = self.compare(new_source, old_source)
        return {"regression_probability": prob,
                "flagged": prob >= threshold, "threshold": threshold}

    def rank(self, candidates: list[str],
             baseline: str | None = None) -> list[dict]:
        """Order candidate versions fastest-first.

        Every candidate is scored by its mean probability of being
        slower than each other candidate (round-robin tournament, one
        batched classifier GEMM); with ``baseline`` given, each entry
        also reports ``p_slower_than_baseline``. A single candidate is
        well-defined (score 0.5 — nothing to beat); an empty list is a
        ``ValueError``; an unparseable candidate or baseline raises
        :class:`RequestSourceError` naming which entry failed, before
        any encoding work.
        """
        candidates = list(candidates)
        if not candidates:
            raise ValueError("rank needs at least one candidate")
        self._count("rank")
        start = time.perf_counter()
        sources = list(candidates) + ([baseline] if baseline is not None else [])
        labels = [f"candidate #{i}" for i in range(len(candidates))]
        if baseline is not None:
            labels.append("baseline")
        z = self._embed_sources(sources, labels=labels)
        n = len(candidates)
        scores = np.full(n, 0.5)
        if n > 1:
            idx_i, idx_j = np.nonzero(~np.eye(n, dtype=bool))
            with no_grad():
                logits = self.model.classifier.logits(
                    Tensor(z[idx_i]), Tensor(z[idx_j]))
                probs = logits.sigmoid().data
            scores = probs.reshape(n, n - 1).mean(axis=1)
        vs_baseline = None
        if baseline is not None:
            with no_grad():
                logits = self.model.classifier.logits(
                    Tensor(z[:n]),
                    Tensor(np.broadcast_to(z[n], (n, z.shape[1])).copy()))
                vs_baseline = logits.sigmoid().data
        report = []
        for i in range(n):
            entry = {"candidate": i, "score": float(scores[i])}
            if vs_baseline is not None:
                entry["p_slower_than_baseline"] = float(vs_baseline[i])
            report.append(entry)
        report.sort(key=lambda e: e["score"])
        self._latency_by_op["rank"].observe(time.perf_counter() - start)
        return report

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Historical stats dict — identical keys, but every number is
        now a view over the obs registry (publishing the hot-path
        counts into it on the way)."""
        counts = {op: int(total)
                  for op, total in self._publish_requests().items()}
        encoded_trees = int(self._encoded.value)
        encode_time_s = self._encode_seconds.value
        return {
            "requests": dict(counts, total=sum(counts.values())),
            # Which kernel backend/dtype produced the numbers, so load
            # tests can attribute throughput to the right configuration.
            "backend": nn_backend.describe(),
            "cache": self.cache.stats(),
            "batcher": self.batcher.stats(),
            "encoder": {
                "trees_encoded": encoded_trees,
                "encode_time_s": encode_time_s,
                "trees_per_sec": (encoded_trees / encode_time_s
                                  if encode_time_s > 0 else 0.0),
            },
            "uptime_s": time.monotonic() - self._started,
        }

    def metrics_snapshot(self) -> dict:
        """Registry snapshot with the live gauges (uptime, cache size,
        batcher queue) refreshed — the payload behind the ``metrics``
        op and the scrape endpoint."""
        self._uptime.set(time.monotonic() - self._started)
        self._publish_requests()
        self.cache.stats()       # publishes counters + cache size
        self.batcher.stats()     # refreshes repro_serve_batcher_pending
        return self.registry.snapshot()

    def close(self) -> None:
        self.batcher.close()

    def __enter__(self) -> "PredictionService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

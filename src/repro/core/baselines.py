"""Non-learned baselines for the comparative task.

The paper motivates deep structural learning by arguing that (a) static
heuristics miss the interaction between constructs and (b) absolute
runtime prediction from static features is inaccurate [20, 24]. These
baselines make both claims measurable in this reproduction:

* :class:`NodeCountHeuristic` — "longer code is slower".
* :class:`LoopNestingHeuristic` — score by maximum loop-nesting depth,
  then loop count (the paper's Section VI-E observation that big gaps
  come from loop constructs, distilled into a rule).
* :class:`WeightedConstructHeuristic` — hand-weighted construct counts.
* :class:`AbsoluteRuntimeRegressor` — ridge regression from a node-kind
  histogram to log-runtime; pairs are classified by comparing the two
  predicted absolute runtimes (the literature approach the paper
  contrasts against).

All expose the same ``predict_probability(source_i, source_j)``
contract as :class:`~repro.core.model.ComparativeModel`, so the
evaluation stack runs them unchanged.
"""

from __future__ import annotations

import numpy as np

from ..corpus.problem import Submission
from ..data.pairs import CodePair
from ..lang.cpp_ast import DoWhile, For, While
from ..lang.parser import parse
from ..lang.simplify import simplify
from ..lang.vocab import NodeVocab
from .features import TreeFeaturizer

__all__ = ["NodeCountHeuristic", "LoopNestingHeuristic",
           "WeightedConstructHeuristic", "AbsoluteRuntimeRegressor",
           "baseline_accuracy"]


class _ScoreComparator:
    """Shared plumbing: higher score = expected slower."""

    def score(self, source: str) -> float:
        raise NotImplementedError

    def predict_probability(self, source_i: str, source_j: str) -> float:
        """Smooth comparison of the two scores (logistic on the gap)."""
        gap = self.score(source_i) - self.score(source_j)
        return float(1.0 / (1.0 + np.exp(-gap / max(self._scale(), 1e-9))))

    def predict_label(self, source_i: str, source_j: str,
                      threshold: float = 0.5) -> int:
        return int(self.predict_probability(source_i, source_j) >= threshold)

    def _scale(self) -> float:
        return 1.0


class NodeCountHeuristic(_ScoreComparator):
    """Score = AST node count."""

    def __init__(self):
        self._featurizer = TreeFeaturizer()

    def score(self, source: str) -> float:
        return float(self._featurizer(source).num_nodes)

    def _scale(self) -> float:
        return 10.0


class LoopNestingHeuristic(_ScoreComparator):
    """Score = max loop nesting depth (dominant) + 0.1 x loop count."""

    _LOOPS = (For, While, DoWhile)

    def score(self, source: str) -> float:
        root = simplify(parse(source))

        def walk(node, depth):
            is_loop = isinstance(node, self._LOOPS)
            here = depth + (1 if is_loop else 0)
            best = here
            count = 1 if is_loop else 0
            for child in node.children():
                child_best, child_count = walk(child, here)
                best = max(best, child_best)
                count += child_count
            return best, count

        max_depth, loop_count = walk(root, 0)
        return float(max_depth) + 0.1 * loop_count

    def _scale(self) -> float:
        return 0.5


class WeightedConstructHeuristic(_ScoreComparator):
    """Hand-tuned construct weights (what a static linter might do)."""

    WEIGHTS = {
        "for_stmt": 5.0, "while_stmt": 5.0, "do_while_stmt": 5.0,
        "call": 1.5, "method_push_back": 0.5, "method_insert": 1.0,
        "method_count": 1.0, "index": 0.3, "io_read": 0.5, "io_write": 0.5,
    }

    def __init__(self):
        self._featurizer = TreeFeaturizer()

    def score(self, source: str) -> float:
        kinds = self._featurizer(source).kinds
        return float(sum(self.WEIGHTS.get(kind, 0.05) for kind in kinds))

    def _scale(self) -> float:
        return 5.0


class AbsoluteRuntimeRegressor(_ScoreComparator):
    """Ridge regression: node-kind histogram -> log mean runtime.

    This is the "predict absolute execution time from static features"
    strategy whose weakness motivates the paper's comparative framing.
    It still *competes* on the pairwise task by comparing its two
    absolute predictions.
    """

    def __init__(self, ridge: float = 1.0, vocab: NodeVocab | None = None):
        if ridge < 0:
            raise ValueError("ridge must be non-negative")
        self.ridge = ridge
        self._featurizer = TreeFeaturizer(vocab=vocab)
        self._weights: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _histogram(self, source: str) -> np.ndarray:
        feats = self._featurizer(source)
        hist = np.zeros(len(self._featurizer.vocab) + 1)
        for node_id in feats.node_ids:
            hist[node_id] += 1.0
        hist[-1] = 1.0  # bias feature
        return hist

    def fit(self, submissions: list[Submission]) -> "AbsoluteRuntimeRegressor":
        if len(submissions) < 2:
            raise ValueError("need at least 2 submissions to fit")
        x = np.stack([self._histogram(s.source) for s in submissions])
        y = np.log(np.maximum([s.mean_runtime_ms for s in submissions], 1.0))
        gram = x.T @ x + self.ridge * np.eye(x.shape[1])
        self._weights = np.linalg.solve(gram, x.T @ y)
        return self

    def predict_runtime_ms(self, source: str) -> float:
        if self._weights is None:
            raise RuntimeError("call fit() before predicting")
        return float(np.exp(self._histogram(source) @ self._weights))

    def score(self, source: str) -> float:
        if self._weights is None:
            raise RuntimeError("call fit() before predicting")
        return float(self._histogram(source) @ self._weights)

    def _scale(self) -> float:
        return 0.25


def baseline_accuracy(comparator, pairs: list[CodePair]) -> float:
    """Pairwise accuracy of any ``predict_probability`` comparator."""
    if not pairs:
        raise ValueError("no pairs to evaluate")
    correct = 0
    for pair in pairs:
        predicted = comparator.predict_label(pair.first.source,
                                             pair.second.source)
        correct += int(predicted == pair.label)
    return correct / len(pairs)

"""ComparativeModel: the full F + C pipeline of the paper (Fig. 1)."""

from __future__ import annotations

import numpy as np

from ..nn.module import Module
from ..nn.tensor import Tensor, no_grad
from .classifier import PairClassifier
from .encoders import GcnEncoder, LstmEncoder, TreeLstmEncoder
from .features import TreeFeatures, TreeFeaturizer

__all__ = ["ComparativeModel", "build_model", "model_from_config",
           "ENCODER_KINDS"]

ENCODER_KINDS = ("treelstm", "gcn", "lstm")


class ComparativeModel(Module):
    """Encoder + pair classifier over featurized ASTs."""

    def __init__(self, encoder: Module, classifier: PairClassifier,
                 featurizer: TreeFeaturizer):
        super().__init__()
        self.encoder = encoder
        self.classifier = classifier
        self.featurizer = featurizer

    # ------------------------------------------------------------------
    def pair_logit(self, first: TreeFeatures, second: TreeFeatures) -> Tensor:
        z_i = self.encoder(first)
        z_j = self.encoder(second)
        return self.classifier.logit(z_i, z_j)

    def pair_logits(self, pairs: list[tuple[TreeFeatures, TreeFeatures]]) -> Tensor:
        """Batched logits, (B,): all 2B trees encoded in ONE fused pass.

        This is the training/eval hot path: the whole batch shares one
        forward (and, during training, one backward) graph instead of 2B
        separate encoder invocations. Row ``b`` is numerically
        equivalent to ``pair_logit(*pairs[b])``.
        """
        if not pairs:
            raise ValueError("pair_logits requires at least one pair")
        feats = [f for pair in pairs for f in pair]
        z = self.encoder.encode_batch(feats)      # (2B, d), interleaved
        return self.classifier.logits(z[0::2], z[1::2])

    def pair_logit_from_source(self, source_i: str, source_j: str) -> Tensor:
        return self.pair_logit(self.featurizer(source_i),
                               self.featurizer(source_j))

    # ------------------------------------------------------------------
    def predict_probability(self, source_i: str, source_j: str) -> float:
        """P(label=1) = P(first is slower-or-equal | both ASTs)."""
        with no_grad():
            return float(self.pair_logit_from_source(source_i, source_j)
                         .sigmoid().data)

    def predict_label(self, source_i: str, source_j: str,
                      threshold: float = 0.5) -> int:
        return int(self.predict_probability(source_i, source_j) >= threshold)

    def embed(self, source: str) -> np.ndarray:
        """Latent code vector for one source (for Fig. 7 and reuse)."""
        with no_grad():
            return self.encoder(self.featurizer(source)).data.copy()

    def embed_batch(self, sources: list[str], batch_size: int = 64) -> np.ndarray:
        """Latent code vectors for many sources, (T, d), forest-batched.

        Identical sources are encoded **once** and fanned back out to
        every position that requested them (submission corpora and
        serving traffic both repeat sources heavily), so the encoder
        only ever sees the unique trees.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if not sources:
            return np.zeros((0, self.encoder.output_size))
        unique: dict[str, int] = {}
        slot_of = [unique.setdefault(s, len(unique)) for s in sources]
        ordered = list(unique)
        codes = np.empty((len(ordered), self.encoder.output_size))
        with no_grad():
            for start in range(0, len(ordered), batch_size):
                chunk = ordered[start:start + batch_size]
                feats = [self.featurizer(s) for s in chunk]
                codes[start:start + len(chunk)] = \
                    self.encoder.encode_batch(feats).data
        return codes[slot_of]


def build_model(encoder_kind: str = "treelstm", vocab_size: int | None = None,
                embedding_dim: int = 32, hidden_size: int = 32,
                num_layers: int = 1, direction: str = "alternating",
                classifier_hidden: int = 0,
                seed: int = 0,
                featurizer: TreeFeaturizer | None = None) -> ComparativeModel:
    """Factory with experiment-friendly defaults.

    Note the *paper-scale* configuration is ``embedding_dim=120,
    hidden_size=100`` (Section V-C); the defaults here are smaller so
    the pure-numpy stack trains in seconds. Both are exercised in the
    benchmark harness.
    """
    if encoder_kind not in ENCODER_KINDS:
        raise ValueError(f"unknown encoder kind {encoder_kind!r}")
    featurizer = featurizer if featurizer is not None else TreeFeaturizer()
    if vocab_size is None:
        vocab_size = len(featurizer.vocab)
    rng = np.random.default_rng(seed)
    if encoder_kind == "treelstm":
        encoder = TreeLstmEncoder(vocab_size, embedding_dim=embedding_dim,
                                  hidden_size=hidden_size,
                                  num_layers=num_layers, direction=direction,
                                  rng=rng)
    elif encoder_kind == "gcn":
        encoder = GcnEncoder(vocab_size, embedding_dim=embedding_dim,
                             hidden_size=hidden_size, num_layers=num_layers,
                             rng=rng)
    else:
        if num_layers != 1:
            raise ValueError("the sequential lstm encoder is single-layer; "
                             "got num_layers=%d" % num_layers)
        if direction != "alternating":
            raise ValueError("direction is a tree-LSTM knob; the sequential "
                             "lstm encoder does not accept "
                             f"direction={direction!r}")
        encoder = LstmEncoder(vocab_size, embedding_dim=embedding_dim,
                              hidden_size=hidden_size, rng=rng)
    classifier = PairClassifier(encoder.output_size,
                                hidden=classifier_hidden, rng=rng)
    model = ComparativeModel(encoder, classifier, featurizer)
    model.config = {
        "encoder_kind": encoder_kind, "vocab_size": vocab_size,
        "embedding_dim": embedding_dim, "hidden_size": hidden_size,
        "num_layers": num_layers, "direction": direction,
        "classifier_hidden": classifier_hidden, "seed": seed,
    }
    return model


def model_from_config(config: dict,
                      featurizer: TreeFeaturizer | None = None) -> ComparativeModel:
    """Rebuild a :func:`build_model` model from its ``config`` dict.

    This is the construct-from-checkpoint half of
    :mod:`repro.serve.checkpoint`: the config travels inside the
    checkpoint's metadata header, so loading never requires the caller
    to re-specify architecture knobs.
    """
    known = {"encoder_kind", "vocab_size", "embedding_dim", "hidden_size",
             "num_layers", "direction", "classifier_hidden", "seed"}
    unknown = set(config) - known
    if unknown:
        raise ValueError(f"unknown model config keys: {sorted(unknown)}")
    return build_model(featurizer=featurizer, **config)

"""The classifier C (paper Section IV-D).

Concatenates the two latent code vectors (size 2d) and maps them
through a fully connected layer with sigmoid activation to the
probability that the *second* program is faster-or-equal (label 1).
"""

from __future__ import annotations

import numpy as np

from ..nn.layers import Linear
from ..nn.module import Module
from ..nn.tensor import Tensor

__all__ = ["PairClassifier"]


class PairClassifier(Module):
    """``sigmoid(W [z_i ; z_j] + b)`` with optional hidden layer."""

    def __init__(self, latent_size: int, hidden: int = 0,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if hidden > 0:
            self.pre = Linear(2 * latent_size, hidden, rng=rng)
            self.out = Linear(hidden, 1, rng=rng)
        else:
            self.pre = None
            self.out = Linear(2 * latent_size, 1, rng=rng)

    def logit(self, z_i: Tensor, z_j: Tensor) -> Tensor:
        """Raw score (scalar tensor); positive favours label 1."""
        joint = Tensor.concat([z_i, z_j], axis=0)
        if self.pre is not None:
            joint = self.pre(joint).tanh()
        return self.out(joint)[0]

    def logits(self, z_i: Tensor, z_j: Tensor) -> Tensor:
        """Batched raw scores: ``z_i``/``z_j`` are (B, d), returns (B,).

        Row ``b`` equals ``logit(z_i[b], z_j[b])`` — the whole batch
        goes through the head in one GEMM.
        """
        joint = Tensor.concat([z_i, z_j], axis=1)
        if self.pre is not None:
            joint = self.pre(joint).tanh()
        return self.out(joint).reshape(-1)

    def probability(self, z_i: Tensor, z_j: Tensor) -> Tensor:
        return self.logit(z_i, z_j).sigmoid()

"""Source -> model-ready tree features (the paper's "Input Processing").

:class:`TreeFeaturizer` runs the full frontend (parse -> simplify ->
flatten -> vocabulary encoding) and precomputes the evaluation schedule
for the tree-LSTM and the normalized adjacency for the GCN. Featurized
trees are cached by source hash: the corpus pairs reuse the same
submissions many times. Tree-LSTM schedules are additionally memoized
on tree *structure* (:func:`repro.nn.treelstm.schedule_for`), so two
submissions with the same AST shape share one schedule object.

:func:`pack_forest` fuses a mini-batch of featurized trees into one
:class:`ForestFeatures` — concatenated node IDs plus a merged
:class:`~repro.nn.treelstm.ForestSchedule` — so the encoder runs a
single level-batched pass over the whole batch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.parser import parse
from ..lang.simplify import flatten, simplify
from ..lang.vocab import NodeVocab
from ..nn.gcn import normalized_adjacency
from ..nn.treelstm import ForestSchedule, TreeSchedule, schedule_for

__all__ = ["TreeFeatures", "TreeFeaturizer", "ForestFeatures", "pack_forest"]


@dataclass
class TreeFeatures:
    """Everything the encoders need about one submission's AST."""

    node_ids: np.ndarray          # (n,) vocabulary IDs
    schedule: TreeSchedule        # tree-LSTM evaluation order
    adjacency: np.ndarray         # (n, n) normalized, for the GCN
    categories: list[str]         # Fig. 7 colour groups
    kinds: list[str]

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def root(self) -> int:
        return int(self.schedule.roots[0])


@dataclass
class ForestFeatures:
    """A mini-batch of trees packed into one fused encoder input.

    ``node_ids`` concatenates the member trees' vocabulary IDs in order;
    ``schedule`` is their merged level schedule. ``trees`` keeps the
    original per-tree features (the GCN baseline still consumes them
    one adjacency at a time).
    """

    node_ids: np.ndarray          # (N_total,) vocabulary IDs
    schedule: ForestSchedule      # merged tree-LSTM evaluation order
    trees: list[TreeFeatures]

    @property
    def num_trees(self) -> int:
        return len(self.trees)

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])


_FOREST_CACHE: dict[tuple[int, ...], ForestSchedule] = {}
_FOREST_CACHE_SIZE = 512


def _forest_schedule_for(schedules: list[TreeSchedule]) -> ForestSchedule:
    # Keyed on member identity: per-tree schedules are themselves
    # memoized by structure (schedule_for), so a recurring batch
    # composition (fixed eval sets, repeated benchmark steps) reuses
    # the merged schedule. Safe because ForestSchedule holds strong
    # references to its members, so a live cache entry pins the ids.
    key = tuple(id(s) for s in schedules)
    forest = _FOREST_CACHE.get(key)
    if forest is None:
        forest = ForestSchedule(schedules)
        if len(_FOREST_CACHE) >= _FOREST_CACHE_SIZE:
            _FOREST_CACHE.pop(next(iter(_FOREST_CACHE)))
        _FOREST_CACHE[key] = forest
    return forest


def pack_forest(trees: list[TreeFeatures]) -> ForestFeatures:
    """Concatenate a batch of featurized trees into one forest.

    Packing is pure index arithmetic on the already-built per-tree
    schedules; the fused encode is numerically equivalent to encoding
    each tree alone (verified by the equivalence test-suite). Merged
    schedules are memoized, so re-packing a recurring batch is free.
    """
    if not trees:
        raise ValueError("cannot pack an empty batch of trees")
    return ForestFeatures(
        node_ids=np.concatenate([t.node_ids for t in trees]),
        schedule=_forest_schedule_for([t.schedule for t in trees]),
        trees=list(trees),
    )


class TreeFeaturizer:
    """Stateful featurizer sharing one vocabulary across the corpus."""

    def __init__(self, vocab: NodeVocab | None = None, cache_size: int = 4096):
        self.vocab = vocab if vocab is not None else NodeVocab(frozen=True)
        self._cache: dict[int, TreeFeatures] = {}
        self._cache_size = cache_size

    def __call__(self, source: str) -> TreeFeatures:
        return self.featurize(source)

    def featurize(self, source: str) -> TreeFeatures:
        key = hash(source)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        flat = flatten(simplify(parse(source)))
        features = TreeFeatures(
            node_ids=np.asarray(self.vocab.encode_all(flat.kinds),
                                dtype=np.int64),
            schedule=schedule_for(flat.children),
            adjacency=normalized_adjacency(flat.num_nodes, flat.edges),
            categories=flat.categories,
            kinds=flat.kinds,
        )
        if self._cache_size > 0:
            if len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = features
        return features

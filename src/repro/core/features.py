"""Source -> model-ready tree features (the paper's "Input Processing").

:class:`TreeFeaturizer` runs the full frontend (parse -> simplify ->
flatten -> vocabulary encoding) and precomputes the evaluation schedule
for the tree-LSTM and the normalized adjacency for the GCN. Featurized
trees are cached by source hash: the corpus pairs reuse the same
submissions many times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lang.parser import parse
from ..lang.simplify import flatten, simplify
from ..lang.vocab import NodeVocab
from ..nn.gcn import normalized_adjacency
from ..nn.treelstm import TreeSchedule

__all__ = ["TreeFeatures", "TreeFeaturizer"]


@dataclass
class TreeFeatures:
    """Everything the encoders need about one submission's AST."""

    node_ids: np.ndarray          # (n,) vocabulary IDs
    schedule: TreeSchedule        # tree-LSTM evaluation order
    adjacency: np.ndarray         # (n, n) normalized, for the GCN
    categories: list[str]         # Fig. 7 colour groups
    kinds: list[str]

    @property
    def num_nodes(self) -> int:
        return int(self.node_ids.shape[0])

    @property
    def root(self) -> int:
        return int(self.schedule.roots[0])


class TreeFeaturizer:
    """Stateful featurizer sharing one vocabulary across the corpus."""

    def __init__(self, vocab: NodeVocab | None = None, cache_size: int = 4096):
        self.vocab = vocab if vocab is not None else NodeVocab(frozen=True)
        self._cache: dict[int, TreeFeatures] = {}
        self._cache_size = cache_size

    def __call__(self, source: str) -> TreeFeatures:
        return self.featurize(source)

    def featurize(self, source: str) -> TreeFeatures:
        key = hash(source)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        flat = flatten(simplify(parse(source)))
        features = TreeFeatures(
            node_ids=np.asarray(self.vocab.encode_all(flat.kinds),
                                dtype=np.int64),
            schedule=TreeSchedule(flat.children),
            adjacency=normalized_adjacency(flat.num_nodes, flat.edges),
            categories=flat.categories,
            kinds=flat.kinds,
        )
        if self._cache_size > 0:
            if len(self._cache) >= self._cache_size:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = features
        return features

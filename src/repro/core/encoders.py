"""Deep representation learning: the feature extractor F of the paper.

Both encoders share the structure of Section III-A: a learned node
embedding lookup (dimension λ) followed by a structural network that
produces one latent vector z per AST — the tree-LSTM stack (the paper's
proposal) or the GCN (the baseline it is compared against in Fig. 3).
"""

from __future__ import annotations

import numpy as np

from ..nn.gcn import GCN
from ..nn.layers import Embedding
from ..nn.module import Module
from ..nn.rnn import LSTM
from ..nn.tensor import Tensor
from ..nn.treelstm import TreeLSTMStack
from .features import TreeFeatures, pack_forest

__all__ = ["TreeLstmEncoder", "GcnEncoder", "LstmEncoder"]


class TreeLstmEncoder(Module):
    """Embedding lookup + multi-layer child-sum tree-LSTM.

    Defaults follow Section V-C: embedding λ=120, 100 hidden states —
    shrink both for quick experiments.
    """

    def __init__(self, vocab_size: int, embedding_dim: int = 120,
                 hidden_size: int = 100, num_layers: int = 1,
                 direction: str = "alternating",
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.stack = TreeLSTMStack(embedding_dim, hidden_size,
                                   num_layers=num_layers,
                                   direction=direction, rng=rng)
        self.output_size = self.stack.output_size

    def forward(self, features: TreeFeatures) -> Tensor:
        """Latent code vector z for one AST (shape: (hidden,))."""
        x = self.embedding(features.node_ids)
        return self.stack.encode(x, features.schedule)

    def encode_batch(self, features_list: list[TreeFeatures]) -> Tensor:
        """Latent vectors for a whole batch, (T, hidden), in ONE pass.

        The batch is packed into a fused forest (one embedding lookup,
        one level-batched tree-LSTM sweep, one root gather) — this is
        the hot path for training and bulk evaluation.
        """
        packed = pack_forest(features_list)
        x = self.embedding(packed.node_ids)
        return self.stack.root_states(x, packed.schedule)

    def node_states(self, features: TreeFeatures) -> Tensor:
        """All node hidden states, for visualization (Fig. 7)."""
        x = self.embedding(features.node_ids)
        return self.stack(x, features.schedule)


class GcnEncoder(Module):
    """Embedding lookup + graph convolution stack (baseline F)."""

    def __init__(self, vocab_size: int, embedding_dim: int = 120,
                 hidden_size: int = 117, num_layers: int = 6,
                 readout: str = "mean",
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.gcn = GCN(embedding_dim, hidden_size, num_layers=num_layers,
                       readout=readout, rng=rng)
        self.output_size = self.gcn.output_size

    def forward(self, features: TreeFeatures) -> Tensor:
        x = self.embedding(features.node_ids)
        return self.gcn.encode(x, features.adjacency, root=features.root)

    def encode_batch(self, features_list: list[TreeFeatures]) -> Tensor:
        """Latent vectors for a whole batch, (T, hidden).

        Same batched-encode API as :class:`TreeLstmEncoder`: one fused
        embedding lookup and per-layer weight GEMM across the batch;
        only the dense per-graph adjacency propagation loops.
        """
        node_ids = np.concatenate([f.node_ids for f in features_list])
        x = self.embedding(node_ids)
        return self.gcn.encode_batch(x,
                                     [f.adjacency for f in features_list],
                                     [f.root for f in features_list])

    def node_states(self, features: TreeFeatures) -> Tensor:
        x = self.embedding(features.node_ids)
        return self.gcn(x, features.adjacency)


class LstmEncoder(Module):
    """Embedding lookup + sequential LSTM over the pre-order node walk.

    The structure-blind ablation of the paper's Section III: the AST is
    consumed as a flat token sequence (Eq. 3's chain LSTM), so any win
    of the tree-LSTM over this encoder is attributable to the tree
    topology. The latent code vector is the final hidden state.
    """

    def __init__(self, vocab_size: int, embedding_dim: int = 120,
                 hidden_size: int = 100,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.embedding = Embedding(vocab_size, embedding_dim, rng=rng)
        self.lstm = LSTM(embedding_dim, hidden_size, rng=rng)
        self.output_size = hidden_size

    def forward(self, features: TreeFeatures) -> Tensor:
        x = self.embedding(features.node_ids)
        _, (h, _) = self.lstm(x)
        return h

    def encode_batch(self, features_list: list[TreeFeatures]) -> Tensor:
        """Latent vectors for a whole batch, (T, hidden).

        One fused embedding lookup; the recurrence itself runs per tree
        (sequences have ragged lengths), matching the batched-encode
        API of the other encoders.
        """
        node_ids = np.concatenate([f.node_ids for f in features_list])
        x = self.embedding(node_ids)
        finals = []
        offset = 0
        for feats in features_list:
            n = feats.num_nodes
            _, (h, _) = self.lstm(x[offset:offset + n])
            finals.append(h)
            offset += n
        return Tensor.stack(finals, axis=0)

    def node_states(self, features: TreeFeatures) -> Tensor:
        x = self.embedding(features.node_ids)
        states, _ = self.lstm(x)
        return states

"""Evaluation metrics: accuracy, confusion counts, ROC / AUC (Fig. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["accuracy", "confusion", "RocCurve", "roc_curve", "auc"]


def accuracy(labels, probabilities, threshold: float = 0.5) -> float:
    """Fraction of pairs classified correctly at ``threshold``."""
    y = np.asarray(labels)
    p = np.asarray(probabilities)
    if y.shape != p.shape:
        raise ValueError(f"shape mismatch: {y.shape} vs {p.shape}")
    if y.size == 0:
        raise ValueError("cannot compute accuracy of an empty set")
    return float(((p >= threshold).astype(int) == y).mean())


def confusion(labels, probabilities, threshold: float = 0.5) -> dict:
    y = np.asarray(labels)
    pred = (np.asarray(probabilities) >= threshold).astype(int)
    return {
        "tp": int(((pred == 1) & (y == 1)).sum()),
        "fp": int(((pred == 1) & (y == 0)).sum()),
        "tn": int(((pred == 0) & (y == 0)).sum()),
        "fn": int(((pred == 0) & (y == 1)).sum()),
    }


@dataclass
class RocCurve:
    """False/true positive rates over descending thresholds."""

    thresholds: np.ndarray
    fpr: np.ndarray
    tpr: np.ndarray

    @property
    def auc(self) -> float:
        return float(np.trapezoid(self.tpr, self.fpr))


def roc_curve(labels, probabilities) -> RocCurve:
    """ROC by sweeping the confidence threshold (paper Section VI-B)."""
    y = np.asarray(labels, dtype=int)
    p = np.asarray(probabilities, dtype=float)
    if y.size == 0:
        raise ValueError("cannot compute a ROC curve from no pairs")
    positives = max(1, int((y == 1).sum()))
    negatives = max(1, int((y == 0).sum()))
    order = np.argsort(-p)
    sorted_y = y[order]
    tp = np.cumsum(sorted_y == 1)
    fp = np.cumsum(sorted_y == 0)
    thresholds = np.concatenate([[np.inf], p[order]])
    tpr = np.concatenate([[0.0], tp / positives])
    fpr = np.concatenate([[0.0], fp / negatives])
    return RocCurve(thresholds=thresholds, fpr=fpr, tpr=tpr)


def auc(labels, probabilities) -> float:
    return roc_curve(labels, probabilities).auc

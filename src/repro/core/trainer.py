"""Training loop: mini-batch BCE over code pairs (paper Section IV-D)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import iter_batches
from ..data.pairs import CodePair
from ..nn.loss import bce_with_logits
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, no_grad
from .model import ComparativeModel

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


@dataclass
class TrainConfig:
    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 5e-3
    grad_clip: float = 5.0
    seed: int = 0
    early_stop_patience: int = 0   # 0 disables early stopping
    verbose: bool = False


@dataclass
class TrainHistory:
    losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    stopped_early: bool = False


class Trainer:
    """Optimizes a :class:`ComparativeModel` on labelled pairs."""

    def __init__(self, model: ComparativeModel, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)

    # ------------------------------------------------------------------
    def _featurize_pairs(self, pairs: list[CodePair]):
        featurize = self.model.featurizer
        return [(featurize(p.first.source), featurize(p.second.source),
                 p.label) for p in pairs]

    def _batch_loss(self, batch) -> Tensor:
        logits = [self.model.pair_logit(fi, fj) for fi, fj, _ in batch]
        targets = np.array([label for _, _, label in batch], dtype=float)
        return bce_with_logits(Tensor.stack(logits, axis=0), targets)

    # ------------------------------------------------------------------
    def fit(self, train_pairs: list[CodePair],
            val_pairs: list[CodePair] | None = None) -> TrainHistory:
        if not train_pairs:
            raise ValueError("no training pairs")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        history = TrainHistory()
        prepared = self._featurize_pairs(train_pairs)
        best_val = -1.0
        patience_left = cfg.early_stop_patience

        for epoch in range(cfg.epochs):
            order = np.arange(len(prepared))
            rng.shuffle(order)
            epoch_loss = 0.0
            batches = 0
            for start in range(0, len(prepared), cfg.batch_size):
                batch = [prepared[int(k)] for k in order[start:start + cfg.batch_size]]
                self.optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                norm = clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                history.grad_norms.append(norm)
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.losses.append(epoch_loss / max(1, batches))

            if val_pairs:
                val_acc = self.evaluate_accuracy(val_pairs)
                history.val_accuracies.append(val_acc)
                if cfg.early_stop_patience > 0:
                    if val_acc > best_val + 1e-9:
                        best_val = val_acc
                        patience_left = cfg.early_stop_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            history.stopped_early = True
                            break
            if cfg.verbose:  # pragma: no cover - logging only
                msg = f"epoch {epoch + 1}/{cfg.epochs} loss={history.losses[-1]:.4f}"
                if val_pairs:
                    msg += f" val_acc={history.val_accuracies[-1]:.3f}"
                print(msg)
        return history

    # ------------------------------------------------------------------
    def predict_probabilities(self, pairs: list[CodePair]) -> np.ndarray:
        probs = []
        with no_grad():
            for pair in pairs:
                fi = self.model.featurizer(pair.first.source)
                fj = self.model.featurizer(pair.second.source)
                probs.append(float(self.model.pair_logit(fi, fj)
                                   .sigmoid().data))
        return np.asarray(probs)

    def evaluate_accuracy(self, pairs: list[CodePair],
                          threshold: float = 0.5) -> float:
        from .metrics import accuracy

        probs = self.predict_probabilities(pairs)
        labels = np.array([p.label for p in pairs])
        return accuracy(labels, probs, threshold=threshold)

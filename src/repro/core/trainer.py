"""Training loop: mini-batch BCE over code pairs (paper Section IV-D).

Forest-batched training: each mini-batch's 2B trees are packed into one
fused forest (:func:`repro.core.features.pack_forest`) and encoded by a
single level-batched tree-LSTM sweep, so every optimizer step builds ONE
forward+backward graph instead of 2B per-tree graphs. Featurization and
tree scheduling happen once up front (``Trainer.fit`` prepares the pairs
before the epoch loop, and schedules are memoized by tree structure), so
epochs only pay for the numerics. Bulk inference
(:meth:`Trainer.predict_probabilities`) batches the same way under
``no_grad``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.batching import iter_index_batches
from ..data.pairs import CodePair
from ..nn.loss import bce_with_logits
from ..nn.optim import Adam, clip_grad_norm
from ..nn.tensor import Tensor, no_grad
from .model import ComparativeModel

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


@dataclass
class TrainConfig:
    epochs: int = 12
    batch_size: int = 16
    learning_rate: float = 5e-3
    grad_clip: float = 5.0
    seed: int = 0
    early_stop_patience: int = 0   # 0 disables early stopping
    verbose: bool = False
    eval_batch_size: int = 64      # forest size for bulk inference


@dataclass
class TrainHistory:
    losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    grad_norms: list[float] = field(default_factory=list)
    stopped_early: bool = False


class Trainer:
    """Optimizes a :class:`ComparativeModel` on labelled pairs."""

    def __init__(self, model: ComparativeModel, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(model.parameters(),
                              lr=self.config.learning_rate)

    # ------------------------------------------------------------------
    def _featurize_pairs(self, pairs: list[CodePair]):
        featurize = self.model.featurizer
        return [(featurize(p.first.source), featurize(p.second.source),
                 p.label) for p in pairs]

    def _batch_loss(self, batch) -> Tensor:
        # One fused forest encode for the whole batch: a single
        # forward+backward graph instead of one per tree.
        logits = self.model.pair_logits([(fi, fj) for fi, fj, _ in batch])
        targets = np.array([label for _, _, label in batch], dtype=float)
        return bce_with_logits(logits, targets)

    # ------------------------------------------------------------------
    def fit(self, train_pairs: list[CodePair],
            val_pairs: list[CodePair] | None = None) -> TrainHistory:
        if not train_pairs:
            raise ValueError("no training pairs")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        history = TrainHistory()
        prepared = self._featurize_pairs(train_pairs)
        best_val = -1.0
        patience_left = cfg.early_stop_patience

        for epoch in range(cfg.epochs):
            epoch_loss = 0.0
            batches = 0
            for idx in iter_index_batches(len(prepared), cfg.batch_size,
                                          rng=rng, shuffle=True):
                batch = [prepared[int(k)] for k in idx]
                self.optimizer.zero_grad()
                loss = self._batch_loss(batch)
                loss.backward()
                norm = clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                history.grad_norms.append(norm)
                self.optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            history.losses.append(epoch_loss / max(1, batches))

            if val_pairs:
                val_acc = self.evaluate_accuracy(val_pairs)
                history.val_accuracies.append(val_acc)
                if cfg.early_stop_patience > 0:
                    if val_acc > best_val + 1e-9:
                        best_val = val_acc
                        patience_left = cfg.early_stop_patience
                    else:
                        patience_left -= 1
                        if patience_left <= 0:
                            history.stopped_early = True
                            break
            if cfg.verbose:  # pragma: no cover - logging only
                msg = f"epoch {epoch + 1}/{cfg.epochs} loss={history.losses[-1]:.4f}"
                if val_pairs:
                    msg += f" val_acc={history.val_accuracies[-1]:.3f}"
                print(msg)
        return history

    # ------------------------------------------------------------------
    def predict_probabilities(self, pairs: list[CodePair],
                              batch_size: int | None = None) -> np.ndarray:
        """P(label=1) for every pair, forest-batched under ``no_grad``."""
        if not pairs:
            return np.zeros(0)
        if batch_size is None:
            batch_size = self.config.eval_batch_size
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        featurize = self.model.featurizer
        probs = np.empty(len(pairs))
        with no_grad():
            for start in range(0, len(pairs), batch_size):
                chunk = pairs[start:start + batch_size]
                feats = [(featurize(p.first.source), featurize(p.second.source))
                         for p in chunk]
                logits = self.model.pair_logits(feats)
                probs[start:start + len(chunk)] = logits.sigmoid().data
        return probs

    def evaluate_accuracy(self, pairs: list[CodePair],
                          threshold: float = 0.5) -> float:
        from .metrics import accuracy

        probs = self.predict_probabilities(pairs)
        labels = np.array([p.label for p in pairs])
        return accuracy(labels, probs, threshold=threshold)

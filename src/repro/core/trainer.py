"""Trainer: the historical training facade, now a thin shell over
:class:`repro.engine.Engine` (paper Section IV-D).

``Trainer.fit`` keeps its longstanding contract — mini-batch BCE over
code pairs, forest-batched encoding, grad clipping, optional validation
with early stopping, a fresh run per call — but the loop itself lives in
:mod:`repro.engine`: one resumable, callback-instrumented engine shared
by every driver, experiment, HPO trial, and CLI run. ``TrainConfig`` and
``TrainHistory`` are re-exported from there unchanged, so existing
imports keep working.
"""

from __future__ import annotations

import numpy as np

from ..data.pairs import CodePair
from ..engine.loop import Engine, TrainConfig, TrainHistory
from .model import ComparativeModel

__all__ = ["TrainConfig", "TrainHistory", "Trainer"]


class Trainer:
    """Optimizes a :class:`ComparativeModel` on labelled pairs.

    Pass ``engine`` to wrap an existing (e.g. checkpoint-resumed)
    engine instead of building a fresh one; ``model`` and ``config``
    are then taken from it.
    """

    def __init__(self, model: ComparativeModel,
                 config: TrainConfig | None = None,
                 engine: Engine | None = None):
        if engine is not None:
            self.engine = engine
            self.model = engine.model
            self.config = engine.config
        else:
            self.config = config or TrainConfig()
            self.engine = Engine(model, self.config)
            self.model = model
        self.optimizer = self.engine.optimizer

    # ------------------------------------------------------------------
    # compatibility shims over the engine's internals (the perf
    # microbenchmarks drive single steps through these)
    # ------------------------------------------------------------------
    def _featurize_pairs(self, pairs: list[CodePair]):
        return self.engine._featurize_pairs(pairs)

    def _batch_loss(self, batch):
        return self.engine._batch_loss(batch)

    # ------------------------------------------------------------------
    def fit(self, train_pairs: list[CodePair],
            val_pairs: list[CodePair] | None = None) -> TrainHistory:
        return self.engine.fit(train_pairs, val_pairs=val_pairs)

    # ------------------------------------------------------------------
    def predict_probabilities(self, pairs: list[CodePair],
                              batch_size: int | None = None) -> np.ndarray:
        """P(label=1) for every pair, forest-batched under ``no_grad``."""
        return self.engine.predict_probabilities(pairs, batch_size=batch_size)

    def evaluate_accuracy(self, pairs: list[CodePair],
                          threshold: float = 0.5) -> float:
        return self.engine.evaluate_accuracy(pairs, threshold=threshold)

"""Experiment-level evaluation: generalization, sensitivity, matrices.

Implements the measurement protocols of Section VI:

* same-problem accuracy on a disjoint submission split (the line plots
  of Fig. 3),
* cross-problem accuracy (the boxplots of Fig. 3 and the F/G/I matrix
  of Table II),
* sensitivity to the minimum runtime gap (Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus.problem import Submission
from ..data.pairs import CodePair, sample_pairs
from .trainer import Trainer

__all__ = ["EvalResult", "evaluate_on_pairs", "cross_problem_matrix",
           "sensitivity_curve"]


@dataclass
class EvalResult:
    accuracy: float
    auc: float
    num_pairs: int


def evaluate_on_pairs(trainer: Trainer, pairs: list[CodePair],
                      batch_size: int | None = None) -> EvalResult:
    """Accuracy/AUC over ``pairs``; probabilities are computed with the
    forest-batched inference path (``batch_size`` pairs per fused
    encode, defaulting to the trainer's ``eval_batch_size``)."""
    from .metrics import accuracy as accuracy_fn
    from .metrics import auc as auc_fn

    if not pairs:
        raise ValueError("no evaluation pairs")
    probs = trainer.predict_probabilities(pairs, batch_size=batch_size)
    labels = np.array([p.label for p in pairs])
    return EvalResult(accuracy=accuracy_fn(labels, probs),
                      auc=auc_fn(labels, probs),
                      num_pairs=len(pairs))


def cross_problem_matrix(trainers: dict[str, Trainer],
                         eval_submissions: dict[str, list[Submission]],
                         pairs_per_cell: int,
                         seed: int = 0) -> dict[tuple[str, str], float]:
    """Table II: accuracy of the model trained on row-tag, evaluated on
    pairs from column-tag submissions."""
    matrix: dict[tuple[str, str], float] = {}
    for train_tag, trainer in trainers.items():
        for test_tag, subs in eval_submissions.items():
            rng = np.random.default_rng(seed + hash((train_tag, test_tag)) % 10_000)
            pairs = sample_pairs(subs, pairs_per_cell, rng)
            matrix[(train_tag, test_tag)] = \
                evaluate_on_pairs(trainer, pairs).accuracy
    return matrix


def sensitivity_curve(trainer: Trainer, pairs: list[CodePair],
                      thresholds_ms: list[float]) -> list[tuple[float, float, int]]:
    """Fig. 6: accuracy restricted to pairs whose runtime gap exceeds a
    minimum, for each threshold. Returns (threshold, accuracy, n)."""
    from .metrics import accuracy as accuracy_fn

    probs = trainer.predict_probabilities(pairs)
    labels = np.array([p.label for p in pairs])
    gaps = np.array([p.gap_ms for p in pairs])
    curve = []
    for threshold in thresholds_ms:
        mask = gaps >= threshold
        if mask.sum() == 0:
            curve.append((threshold, float("nan"), 0))
            continue
        acc = accuracy_fn(labels[mask], probs[mask])
        curve.append((threshold, acc, int(mask.sum())))
    return curve

"""The paper's contribution: comparative performance prediction from ASTs.

``TreeFeaturizer`` turns source into model-ready trees; ``build_model``
assembles encoder F (tree-LSTM or GCN) + classifier C; ``Trainer``
optimizes BCE over code pairs; ``evaluate``/``pipeline`` implement the
paper's measurement protocols end to end.
"""

from .baselines import (
    AbsoluteRuntimeRegressor, LoopNestingHeuristic, NodeCountHeuristic,
    WeightedConstructHeuristic, baseline_accuracy,
)
from .classifier import PairClassifier
from .encoders import GcnEncoder, LstmEncoder, TreeLstmEncoder
from .evaluate import (
    EvalResult, cross_problem_matrix, evaluate_on_pairs, sensitivity_curve,
)
from .features import ForestFeatures, TreeFeatures, TreeFeaturizer, pack_forest
from .metrics import RocCurve, accuracy, auc, confusion, roc_curve
from .model import ENCODER_KINDS, ComparativeModel, build_model, model_from_config
from .pipeline import (
    ExperimentConfig, ExperimentResult, PerformanceGate, run_experiment,
)
from .trainer import TrainConfig, TrainHistory, Trainer

__all__ = [
    "TreeFeatures", "TreeFeaturizer", "ForestFeatures", "pack_forest",
    "TreeLstmEncoder", "GcnEncoder", "LstmEncoder", "PairClassifier",
    "ComparativeModel", "build_model", "model_from_config", "ENCODER_KINDS",
    "TrainConfig", "TrainHistory", "Trainer",
    "accuracy", "confusion", "RocCurve", "roc_curve", "auc",
    "EvalResult", "evaluate_on_pairs", "cross_problem_matrix",
    "sensitivity_curve",
    "ExperimentConfig", "ExperimentResult", "run_experiment",
    "PerformanceGate",
    "NodeCountHeuristic", "LoopNestingHeuristic",
    "WeightedConstructHeuristic", "AbsoluteRuntimeRegressor",
    "baseline_accuracy",
]

"""End-to-end pipeline (the paper's Fig. 1 and the "development-phase"
integration of Section I).

``run_experiment`` goes from a submission list to a trained model and
its disjoint-split accuracy in one call — the unit every benchmark
composes. ``PerformanceGate`` wraps a trained model as the tool the
paper envisions: given the current and the proposed version of a
source file, flag likely regressions before any test is run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..corpus.problem import Submission
from ..data.pairs import CodePair, sample_pairs
from ..data.splits import split_submissions
from ..engine import train_pairs_model
from .evaluate import EvalResult, evaluate_on_pairs
from .model import ComparativeModel
from .trainer import TrainConfig, Trainer

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment",
           "PerformanceGate"]


@dataclass
class ExperimentConfig:
    """One training run's knobs (model + data + optimization)."""

    encoder_kind: str = "treelstm"
    embedding_dim: int = 24
    hidden_size: int = 24
    num_layers: int = 1
    direction: str = "alternating"
    train_fraction: float = 0.75
    train_pairs: int = 150
    eval_pairs: int = 120
    two_way: bool = False
    seed: int = 0
    train: TrainConfig = field(default_factory=lambda: TrainConfig(
        epochs=10, batch_size=16, learning_rate=5e-3))


@dataclass
class ExperimentResult:
    trainer: Trainer
    evaluation: EvalResult | None
    train_submissions: list[Submission]
    test_submissions: list[Submission]
    history: object


def run_experiment(submissions: list[Submission],
                   config: ExperimentConfig | None = None,
                   model: ComparativeModel | None = None,
                   callbacks=(),
                   resume_from=None, resume_cast: bool = False) -> ExperimentResult:
    """Split -> pair -> train (via :mod:`repro.engine`) -> evaluate.

    ``callbacks`` are extra engine callbacks (checkpointing, pruning,
    custom instrumentation). ``resume_from`` continues a killed run from
    its training checkpoint: the data split and pair sample are
    re-derived deterministically from ``config.seed``, while weights,
    optimizer moments, and the shuffle RNG come from the checkpoint —
    so the finished run is bitwise-identical to an uninterrupted one.
    Setting ``config.eval_pairs = 0`` skips the held-out evaluation
    (``evaluation`` is then ``None``), which the paper-figure drivers
    use when they score the model themselves later.
    """
    config = config or ExperimentConfig()
    rng = np.random.default_rng(config.seed)
    train_subs, test_subs = split_submissions(
        submissions, config.train_fraction, rng)
    train_pairs = sample_pairs(train_subs, config.train_pairs, rng,
                               two_way=config.two_way)
    test_pairs = (sample_pairs(test_subs, config.eval_pairs, rng)
                  if config.eval_pairs else [])
    run = train_pairs_model(
        train_pairs, train=config.train, callbacks=callbacks, model=model,
        encoder_kind=config.encoder_kind, embedding_dim=config.embedding_dim,
        hidden_size=config.hidden_size, num_layers=config.num_layers,
        direction=config.direction, seed=config.seed,
        resume_from=resume_from, resume_cast=resume_cast)
    trainer = run.trainer
    evaluation = evaluate_on_pairs(trainer, test_pairs) if test_pairs else None
    return ExperimentResult(trainer=trainer, evaluation=evaluation,
                            train_submissions=train_subs,
                            test_submissions=test_subs, history=run.history)


class PerformanceGate:
    """Developer-facing wrapper: compare two versions of a program.

    ``check(old, new)`` returns the model's probability that the *new*
    version is slower than the old one, plus an accept/flag decision at
    a confidence threshold chosen per Section VII (raising it trades
    recall for precision on regressions).
    """

    def __init__(self, model: ComparativeModel, flag_threshold: float = 0.5):
        if not 0.0 < flag_threshold < 1.0:
            raise ValueError("flag_threshold must be in (0, 1)")
        self.model = model
        self.flag_threshold = flag_threshold

    def regression_probability(self, old_source: str, new_source: str) -> float:
        """P(new is slower-or-equal than old).

        Eq. (1) labels a pair (p_i, p_j) with 1 when p_i is slower; to
        score the *new* version we place it first.
        """
        return self.model.predict_probability(new_source, old_source)

    def check(self, old_source: str, new_source: str) -> dict:
        prob = self.regression_probability(old_source, new_source)
        return {
            "regression_probability": prob,
            "flagged": prob >= self.flag_threshold,
            "threshold": self.flag_threshold,
        }

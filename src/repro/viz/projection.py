"""Embedding extraction for Fig. 7.

Fig. 7(a) projects the *node-type* embedding table (one λ-dim vector
per AST node kind, coloured by syntactic category); Fig. 7(b) projects
*code* embeddings of submissions from several problems (coloured by
problem).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.model import ComparativeModel
from ..corpus.problem import Submission
from ..lang.cpp_ast import (
    ASSIGN_OP_NAMES, BINARY_OP_NAMES, POSTFIX_OP_NAMES, UNARY_OP_NAMES,
)
from .tsne import tsne

__all__ = ["NodeEmbeddingAtlas", "node_embedding_atlas", "code_embedding_map"]

_LITERAL_KINDS = {"lit_int", "lit_float", "lit_char", "lit_string", "lit_bool"}
_STATEMENT_KINDS = {
    "block", "var_decl", "expr_stmt", "if_stmt", "for_stmt", "while_stmt",
    "do_while_stmt", "return_stmt", "break_stmt", "continue_stmt",
    "io_read", "io_write",
}
_EXPRESSION_KINDS = {"ternary", "call", "construct", "index", "member", "ident"}


def kind_category(kind: str) -> str:
    """The Fig.-7(a) colour group for a node kind."""
    op_names = set(BINARY_OP_NAMES.values()) | set(ASSIGN_OP_NAMES.values()) \
        | set(UNARY_OP_NAMES.values()) | set(POSTFIX_OP_NAMES.values())
    if kind.startswith("op_") and kind[3:] in op_names:
        return "operation"
    if kind in _LITERAL_KINDS:
        return "literal"
    if kind in _STATEMENT_KINDS:
        return "statement"
    if kind in _EXPRESSION_KINDS or kind.startswith("method_"):
        return "expression"
    return "support"


@dataclass
class NodeEmbeddingAtlas:
    kinds: list[str]
    categories: list[str]
    points: np.ndarray          # (n, 2)


def node_embedding_atlas(model: ComparativeModel, perplexity: float = 12.0,
                         n_iter: int = 300, seed: int = 0) -> NodeEmbeddingAtlas:
    """Project the learned node-embedding table to 2-D (Fig. 7a)."""
    vocab = model.featurizer.vocab
    table = model.encoder.embedding.weight.data
    kinds = [vocab.decode(i) for i in range(len(vocab))]
    points = tsne(table, perplexity=perplexity, n_iter=n_iter, seed=seed)
    return NodeEmbeddingAtlas(
        kinds=kinds,
        categories=[kind_category(k) for k in kinds],
        points=points,
    )


def code_embedding_map(model: ComparativeModel,
                       groups: dict[str, list[Submission]],
                       perplexity: float = 15.0, n_iter: int = 300,
                       seed: int = 0) -> tuple[np.ndarray, list[str]]:
    """Project code embeddings of several problems to 2-D (Fig. 7b).

    Returns (points, group_labels), one row per submission.
    """
    sources = []
    labels = []
    for tag, submissions in groups.items():
        for sub in submissions:
            sources.append(sub.source)
            labels.append(tag)
    if len(sources) < 3:
        raise ValueError("need at least 3 submissions across groups")
    vectors = model.embed_batch(sources)
    points = tsne(vectors, perplexity=perplexity, n_iter=n_iter, seed=seed)
    return points, labels

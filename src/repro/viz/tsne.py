"""Exact t-SNE (van der Maaten & Hinton 2008) on numpy.

Used for Fig. 7: projecting the learned λ-dimensional node and code
embeddings to 2-D. Implements the standard pipeline — pairwise
affinities with per-point perplexity calibration (binary search over
bandwidths), symmetrization, early exaggeration, and gradient descent
with momentum on the Student-t low-dimensional affinities.
"""

from __future__ import annotations

import numpy as np

__all__ = ["tsne"]


def _pairwise_sq_dists(x: np.ndarray) -> np.ndarray:
    norms = (x ** 2).sum(axis=1)
    d2 = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def _calibrate_p(d2: np.ndarray, perplexity: float,
                 tol: float = 1e-4, max_iter: int = 50) -> np.ndarray:
    """Per-row bandwidths so each conditional distribution has the
    requested perplexity."""
    n = d2.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n))
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        row = d2[i].copy()
        row[i] = np.inf
        for _ in range(max_iter):
            exps = np.exp(-row * beta)
            total = exps.sum()
            if total <= 0:
                beta /= 2.0
                continue
            probs = exps / total
            nonzero = probs > 0
            entropy = -np.sum(probs[nonzero] * np.log(probs[nonzero]))
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:
                beta_lo = beta
                beta = beta * 2.0 if beta_hi == np.inf else (beta + beta_hi) / 2.0
            else:
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        p[i] = probs
    return p


def tsne(x: np.ndarray, n_components: int = 2, perplexity: float = 20.0,
         n_iter: int = 400, learning_rate: float = 100.0,
         seed: int = 0, early_exaggeration: float = 4.0) -> np.ndarray:
    """Project ``x`` (n, d) to (n, n_components)."""
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    if n < 3:
        raise ValueError("t-SNE needs at least 3 points")
    perplexity = min(perplexity, (n - 1) / 3.0)
    if n_iter < 50:
        raise ValueError("n_iter too small to converge")

    cond = _calibrate_p(_pairwise_sq_dists(x), perplexity)
    p = (cond + cond.T) / (2.0 * n)
    np.fill_diagonal(p, 0.0)
    p = np.maximum(p / max(p.sum(), 1e-12), 1e-12)

    rng = np.random.default_rng(seed)
    # PCA initialization stabilizes layouts across runs.
    centered = x - x.mean(axis=0)
    if min(centered.shape) >= n_components:
        _, _, vt = np.linalg.svd(centered, full_matrices=False)
        y = centered @ vt[:n_components].T
        scale = np.abs(y).max()
        y = y / (scale if scale > 0 else 1.0) * 1e-2
    else:
        y = rng.normal(0.0, 1e-2, size=(n, n_components))
    y = y + rng.normal(0.0, 1e-4, size=y.shape)

    velocity = np.zeros_like(y)
    exaggeration_until = min(100, n_iter // 4)

    for iteration in range(n_iter):
        pij = p * early_exaggeration if iteration < exaggeration_until else p
        d2 = _pairwise_sq_dists(y)
        inv = 1.0 / (1.0 + d2)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / max(inv.sum(), 1e-12), 1e-12)
        coeff = (pij - q) * inv
        grad = 4.0 * ((np.diag(coeff.sum(axis=1)) - coeff) @ y)
        momentum = 0.5 if iteration < exaggeration_until else 0.8
        velocity = momentum * velocity - learning_rate * grad
        y = y + velocity
        y = y - y.mean(axis=0)
    return y

"""Visualization: t-SNE projections (Fig. 7) and terminal figure rendering."""

from .ascii_plot import box_summary, line_plot, scatter_plot, table
from .projection import (
    NodeEmbeddingAtlas, code_embedding_map, kind_category,
    node_embedding_atlas,
)
from .tsne import tsne

__all__ = [
    "tsne",
    "NodeEmbeddingAtlas", "node_embedding_atlas", "code_embedding_map",
    "kind_category",
    "line_plot", "scatter_plot", "box_summary", "table",
]

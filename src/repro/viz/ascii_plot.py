"""Terminal rendering of the paper's figures (line, scatter, box, ROC).

The benchmark harness is headless, so every figure is regenerated as an
ASCII panel: good enough to eyeball the *shape* the paper reports, and
diffable in CI logs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["line_plot", "scatter_plot", "box_summary", "table"]


def _scale(values: np.ndarray, size: int) -> np.ndarray:
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi - lo < 1e-12:
        return np.full(values.shape, size // 2, dtype=int)
    return np.clip(((values - lo) / (hi - lo) * (size - 1)).round().astype(int),
                   0, size - 1)


def line_plot(xs, ys, width: int = 60, height: int = 14,
              title: str = "", x_label: str = "", y_label: str = "") -> str:
    """Single-series line plot with axis ranges in the footer."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.size != ys.size or xs.size == 0:
        raise ValueError("xs and ys must be equal-length and non-empty")
    grid = [[" "] * width for _ in range(height)]
    col = _scale(xs, width)
    row = _scale(ys, height)
    for c, r in zip(col, row):
        grid[height - 1 - r][c] = "*"
    # connect consecutive points coarsely
    for k in range(len(col) - 1):
        c0, c1 = sorted((col[k], col[k + 1]))
        r_interp = np.linspace(row[k], row[k + 1], max(2, c1 - c0 + 1))
        for c, r in zip(range(c0, c1 + 1), r_interp.round().astype(int)):
            if grid[height - 1 - r][c] == " ":
                grid[height - 1 - r][c] = "."
    lines = [title] if title else []
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append(f"x: {x_label} [{xs.min():g}, {xs.max():g}]   "
                 f"y: {y_label} [{ys.min():.3f}, {ys.max():.3f}]")
    return "\n".join(lines)


def scatter_plot(points, labels, width: int = 64, height: int = 20,
                 title: str = "") -> str:
    """2-D scatter with one glyph per label group (Fig. 7 rendering)."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError("points must be (n, 2)")
    glyphs = "ox+#@%&*=~"
    unique = sorted(set(labels))
    glyph_of = {lab: glyphs[i % len(glyphs)] for i, lab in enumerate(unique)}
    grid = [[" "] * width for _ in range(height)]
    cols = _scale(points[:, 0], width)
    rows = _scale(points[:, 1], height)
    for (c, r, lab) in zip(cols, rows, labels):
        grid[height - 1 - r][c] = glyph_of[lab]
    lines = [title] if title else []
    lines += ["|" + "".join(r) for r in grid]
    lines.append("+" + "-" * width)
    lines.append("legend: " + "  ".join(f"{glyph_of[u]}={u}" for u in unique))
    return "\n".join(lines)


def box_summary(groups: dict[str, list[float]]) -> str:
    """Five-number summaries standing in for the paper's boxplots."""
    lines = [f"{'group':>8} {'min':>7} {'q1':>7} {'median':>7} {'q3':>7} "
             f"{'max':>7} {'n':>4}"]
    for name in sorted(groups):
        values = np.asarray(groups[name], dtype=float)
        if values.size == 0:
            continue
        q1, med, q3 = np.percentile(values, [25, 50, 75])
        lines.append(f"{name:>8} {values.min():7.3f} {q1:7.3f} {med:7.3f} "
                     f"{q3:7.3f} {values.max():7.3f} {values.size:4d}")
    return "\n".join(lines)


def table(headers: list[str], rows: list[list]) -> str:
    """Monospace table used for Table I/II/III outputs."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)

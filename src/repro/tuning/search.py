"""Study/Trial API (Optuna stand-in; paper Section V-C).

The paper tunes GCN depth/width and tree-LSTM sizes with Optuna. This
module reproduces the ergonomics::

    study = Study(direction="maximize", sampler=TpeLiteSampler(seed=1))
    study.optimize(objective, n_trials=20)
    study.best_trial.params

where ``objective(trial)`` calls ``trial.suggest_int("layers", 1, 16)``
etc. and returns the validation metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .samplers import RandomSampler

__all__ = ["Trial", "FrozenTrial", "Study", "TrialPruned"]


class TrialPruned(Exception):
    """Raised by an objective to abandon a trial early."""


@dataclass
class FrozenTrial:
    number: int
    value: float | None
    params: dict = field(default_factory=dict)
    state: str = "COMPLETE"


class Trial:
    """Live parameter-suggestion handle passed to the objective."""

    def __init__(self, number: int, study: "Study"):
        self.number = number
        self._study = study
        self.params: dict = {}

    def _history_for(self, name: str):
        return [(t.value, t.params[name]) for t in self._study.trials
                if t.state == "COMPLETE" and name in t.params]

    def suggest_int(self, name: str, low: int, high: int) -> int:
        if low > high:
            raise ValueError(f"empty range for {name!r}")
        value = self._study.sampler.suggest_int(low, high,
                                                self._history_for(name))
        self.params[name] = value
        return value

    def suggest_float(self, name: str, low: float, high: float,
                      log: bool = False) -> float:
        if low > high or (log and low <= 0):
            raise ValueError(f"bad range for {name!r}")
        value = self._study.sampler.suggest_float(low, high,
                                                  self._history_for(name),
                                                  log=log)
        self.params[name] = value
        return value

    def suggest_categorical(self, name: str, choices):
        if not choices:
            raise ValueError(f"no choices for {name!r}")
        value = self._study.sampler.suggest_categorical(
            list(choices), self._history_for(name))
        self.params[name] = value
        return value


class Study:
    """Sequential optimization loop over trials."""

    def __init__(self, direction: str = "maximize",
                 sampler: RandomSampler | None = None):
        if direction not in ("maximize", "minimize"):
            raise ValueError("direction must be 'maximize' or 'minimize'")
        self.direction = direction
        self.sampler = sampler or RandomSampler()
        self.trials: list[FrozenTrial] = []

    # ------------------------------------------------------------------
    def optimize(self, objective, n_trials: int) -> None:
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            trial = Trial(len(self.trials), self)
            try:
                value = float(objective(trial))
                state = "COMPLETE"
            except TrialPruned:
                value = None
                state = "PRUNED"
            self.trials.append(FrozenTrial(
                number=trial.number, value=value, params=dict(trial.params),
                state=state))

    # ------------------------------------------------------------------
    @property
    def best_trial(self) -> FrozenTrial:
        completed = [t for t in self.trials if t.state == "COMPLETE"]
        if not completed:
            raise ValueError("no completed trials")
        key = (max if self.direction == "maximize" else min)
        return key(completed, key=lambda t: t.value)

    @property
    def best_value(self) -> float:
        return self.best_trial.value  # type: ignore[return-value]

    @property
    def best_params(self) -> dict:
        return self.best_trial.params

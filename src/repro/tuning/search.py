"""Study/Trial API (Optuna stand-in; paper Section V-C).

The paper tunes GCN depth/width and tree-LSTM sizes with Optuna. This
module reproduces the ergonomics::

    study = Study(direction="maximize", sampler=TpeLiteSampler(seed=1),
                  pruner=MedianPruner())
    study.optimize(objective, n_trials=20)
    study.best_trial.params

where ``objective(trial)`` calls ``trial.suggest_int("layers", 1, 16)``
etc. and returns the validation metric. Objectives that train through
:class:`repro.engine.Engine` get pruning for free: attach a
:class:`TrialPruningCallback` and each epoch's validation accuracy is
reported to the trial, with :class:`TrialPruned` raised as soon as the
study's pruner rejects the partial run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..engine.callbacks import Callback
from .samplers import RandomSampler

__all__ = ["Trial", "FrozenTrial", "Study", "TrialPruned", "MedianPruner",
           "TrialPruningCallback"]


class TrialPruned(Exception):
    """Raised by an objective to abandon a trial early."""


@dataclass
class FrozenTrial:
    number: int
    value: float | None
    params: dict = field(default_factory=dict)
    state: str = "COMPLETE"
    intermediate: dict = field(default_factory=dict)   # step -> value


class Trial:
    """Live parameter-suggestion handle passed to the objective."""

    def __init__(self, number: int, study: "Study"):
        self.number = number
        self._study = study
        self.params: dict = {}
        self.intermediate: dict = {}   # step -> reported value

    def _history_for(self, name: str):
        return [(t.value, t.params[name]) for t in self._study.trials
                if t.state == "COMPLETE" and name in t.params]

    def suggest_int(self, name: str, low: int, high: int) -> int:
        if low > high:
            raise ValueError(f"empty range for {name!r}")
        value = self._study.sampler.suggest_int(low, high,
                                                self._history_for(name))
        self.params[name] = value
        return value

    def suggest_float(self, name: str, low: float, high: float,
                      log: bool = False) -> float:
        if low > high or (log and low <= 0):
            raise ValueError(f"bad range for {name!r}")
        value = self._study.sampler.suggest_float(low, high,
                                                  self._history_for(name),
                                                  log=log)
        self.params[name] = value
        return value

    def suggest_categorical(self, name: str, choices):
        if not choices:
            raise ValueError(f"no choices for {name!r}")
        value = self._study.sampler.suggest_categorical(
            list(choices), self._history_for(name))
        self.params[name] = value
        return value

    # ------------------------------------------------------------------
    # intermediate reporting / pruning (Optuna's trial.report protocol)
    # ------------------------------------------------------------------
    def report(self, value: float, step: int) -> None:
        """Record an intermediate metric (e.g. epoch validation accuracy)."""
        self.intermediate[int(step)] = float(value)

    def should_prune(self) -> bool:
        """Ask the study's pruner whether this partial run is a dead end.

        Always ``False`` without a pruner, so objectives can call this
        unconditionally.
        """
        pruner = self._study.pruner
        return pruner is not None and pruner.should_prune(self._study, self)


class MedianPruner:
    """Prune a trial whose intermediate value falls below (for maximize;
    above for minimize) the median of completed trials at the same step.

    ``n_warmup_trials`` completed trials are required before anything is
    pruned, and the first ``n_warmup_steps`` reports of each trial are
    always allowed through — both guards keep early noise from killing
    good configurations, mirroring Optuna's MedianPruner knobs.
    """

    def __init__(self, n_warmup_trials: int = 2, n_warmup_steps: int = 1):
        if n_warmup_trials < 1 or n_warmup_steps < 0:
            raise ValueError("warmup counts must be positive")
        self.n_warmup_trials = n_warmup_trials
        self.n_warmup_steps = n_warmup_steps

    def should_prune(self, study: "Study", trial: Trial) -> bool:
        if not trial.intermediate:
            return False
        step = max(trial.intermediate)
        if step <= self.n_warmup_steps:
            return False
        peers = [t.intermediate[step] for t in study.trials
                 if t.state == "COMPLETE" and step in t.intermediate]
        if len(peers) < self.n_warmup_trials:
            return False
        median = float(np.median(peers))
        value = trial.intermediate[step]
        if study.direction == "maximize":
            return value < median
        return value > median


class TrialPruningCallback(Callback):
    """Engine callback bridging ``Engine.fit`` to the trial protocol.

    Each epoch's validation accuracy is reported at ``step = epoch``;
    when the study's pruner rejects the partial run, :class:`TrialPruned`
    propagates out of ``Engine.fit`` and ``Study.optimize`` records the
    trial as PRUNED. Requires the objective to pass ``val_pairs`` so the
    engine produces a validation metric.
    """

    def __init__(self, trial: Trial):
        self.trial = trial

    def on_epoch_end(self, engine) -> None:
        accuracy = engine.state.val_accuracy
        if accuracy is None:
            return
        self.trial.report(accuracy, step=engine.state.epoch)
        if self.trial.should_prune():
            raise TrialPruned(
                f"trial {self.trial.number} pruned at epoch "
                f"{engine.state.epoch}")


class Study:
    """Sequential optimization loop over trials."""

    def __init__(self, direction: str = "maximize",
                 sampler: RandomSampler | None = None,
                 pruner: MedianPruner | None = None):
        if direction not in ("maximize", "minimize"):
            raise ValueError("direction must be 'maximize' or 'minimize'")
        self.direction = direction
        self.sampler = sampler or RandomSampler()
        self.pruner = pruner
        self.trials: list[FrozenTrial] = []

    # ------------------------------------------------------------------
    def optimize(self, objective, n_trials: int) -> None:
        if n_trials < 1:
            raise ValueError("n_trials must be >= 1")
        for _ in range(n_trials):
            trial = Trial(len(self.trials), self)
            try:
                value = float(objective(trial))
                state = "COMPLETE"
            except TrialPruned:
                value = None
                state = "PRUNED"
            self.trials.append(FrozenTrial(
                number=trial.number, value=value, params=dict(trial.params),
                state=state, intermediate=dict(trial.intermediate)))

    # ------------------------------------------------------------------
    @property
    def best_trial(self) -> FrozenTrial:
        completed = [t for t in self.trials if t.state == "COMPLETE"]
        if not completed:
            raise ValueError("no completed trials")
        key = (max if self.direction == "maximize" else min)
        return key(completed, key=lambda t: t.value)

    @property
    def best_value(self) -> float:
        return self.best_trial.value  # type: ignore[return-value]

    @property
    def best_params(self) -> dict:
        return self.best_trial.params

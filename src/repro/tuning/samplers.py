"""Samplers for hyper-parameter search.

``RandomSampler`` draws uniformly from each space. ``TpeLiteSampler``
is a lightweight Tree-structured-Parzen-Estimator-flavoured sampler:
after a warm-up it splits observed trials into good/bad halves by
objective and samples near the good half's parameter values — the same
exploitation idea Optuna's TPE uses, sized for our small search spaces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RandomSampler", "TpeLiteSampler"]


class RandomSampler:
    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def suggest_int(self, low: int, high: int, history) -> int:
        return int(self.rng.integers(low, high + 1))

    def suggest_float(self, low: float, high: float, history,
                      log: bool = False) -> float:
        if log:
            return float(np.exp(self.rng.uniform(np.log(low), np.log(high))))
        return float(self.rng.uniform(low, high))

    def suggest_categorical(self, choices, history):
        return choices[int(self.rng.integers(0, len(choices)))]


class TpeLiteSampler(RandomSampler):
    """Exploit good regions after ``warmup`` random trials."""

    def __init__(self, seed: int = 0, warmup: int = 5, gamma: float = 0.5):
        super().__init__(seed)
        if not 0.0 < gamma < 1.0:
            raise ValueError("gamma must be in (0, 1)")
        self.warmup = warmup
        self.gamma = gamma

    def _good_values(self, history):
        """Parameter values from the top-gamma fraction of trials."""
        completed = [(value, params) for value, params in history
                     if value is not None]
        if len(completed) < self.warmup:
            return None
        completed.sort(key=lambda item: item[0], reverse=True)
        keep = max(1, int(len(completed) * self.gamma))
        return [params for _, params in completed[:keep]]

    def suggest_int(self, low: int, high: int, history) -> int:
        good = self._good_values(history)
        if good is None or self.rng.random() < 0.3:
            return super().suggest_int(low, high, history)
        anchor = float(self.rng.choice([p for p in good]))
        spread = max(1.0, (high - low) * 0.2)
        value = int(round(self.rng.normal(anchor, spread)))
        return int(np.clip(value, low, high))

    def suggest_float(self, low: float, high: float, history,
                      log: bool = False) -> float:
        good = self._good_values(history)
        if good is None or self.rng.random() < 0.3:
            return super().suggest_float(low, high, history, log=log)
        anchor = float(self.rng.choice([p for p in good]))
        if log:
            sigma = (np.log(high) - np.log(low)) * 0.2
            value = float(np.exp(self.rng.normal(np.log(anchor), sigma)))
        else:
            value = float(self.rng.normal(anchor, (high - low) * 0.2))
        return float(np.clip(value, low, high))

    def suggest_categorical(self, choices, history):
        good = self._good_values(history)
        if good is None or self.rng.random() < 0.3:
            return super().suggest_categorical(choices, history)
        return self.rng.choice(good) if good else \
            super().suggest_categorical(choices, history)

"""Hyper-parameter optimization (Optuna stand-in, paper Section V-C).

Trials train through :class:`repro.engine.Engine`; attach a
:class:`TrialPruningCallback` to report per-epoch validation metrics
and let a :class:`MedianPruner` abandon dead-end configurations early.
"""

from .samplers import RandomSampler, TpeLiteSampler
from .search import (
    FrozenTrial, MedianPruner, Study, Trial, TrialPruned,
    TrialPruningCallback,
)

__all__ = ["Study", "Trial", "FrozenTrial", "TrialPruned", "MedianPruner",
           "TrialPruningCallback", "RandomSampler", "TpeLiteSampler"]

"""Hyper-parameter optimization (Optuna stand-in, paper Section V-C)."""

from .samplers import RandomSampler, TpeLiteSampler
from .search import FrozenTrial, Study, Trial, TrialPruned

__all__ = ["Study", "Trial", "FrozenTrial", "TrialPruned",
           "RandomSampler", "TpeLiteSampler"]

"""Training-set sampling strategies (paper Section VI-D).

The paper studies two axes: the number of submissions in the training
set (32..4096, Fig. 5a) and the fraction of all possible pairs formed
from them (Fig. 5b). These helpers implement both sweeps.
"""

from __future__ import annotations

import numpy as np

from ..corpus.problem import Submission
from .pairs import CodePair, sample_pairs

__all__ = ["subset_submissions", "pairs_by_fraction", "submission_sweep"]


def subset_submissions(submissions: list[Submission], count: int,
                       rng: np.random.Generator) -> list[Submission]:
    """A uniform random subset of ``count`` submissions."""
    if count < 1:
        raise ValueError("count must be positive")
    count = min(count, len(submissions))
    picked = rng.choice(len(submissions), size=count, replace=False)
    return [submissions[int(k)] for k in picked]


def pairs_by_fraction(submissions: list[Submission], fraction: float,
                      rng: np.random.Generator,
                      two_way: bool = False) -> list[CodePair]:
    """Sample ``fraction`` of the N(N-1) ordered pairs (Fig. 5b sweep)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    n = len(submissions)
    target = max(1, int(round(fraction * n * (n - 1))))
    return sample_pairs(submissions, target, rng, two_way=two_way)


def submission_sweep(start: int = 32, stop: int = 4096) -> list[int]:
    """The paper's powers-of-two sweep: 32, 64, ..., stop."""
    if start < 2 or stop < start:
        raise ValueError("invalid sweep bounds")
    sizes = []
    size = start
    while size <= stop:
        sizes.append(size)
        size *= 2
    return sizes

"""Code-pair generation and labeling (paper Section II-B, eq. 1).

For a pair of submissions (p_i, p_j) the target is::

    y = 0   if t_i <  t_j   (the first program is faster)
    y = 1   if t_i >= t_j   (the second is faster or equivalent)

"if the first element of the pair has a higher execution time, we label
it as positive". For N submissions there are N^2 ordered pairs (the
paper's framing); training uses random subsets of them, optionally with
both orderings of each unordered pair (the "symmetric pairs" ablation
of Section VI-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..corpus.problem import Submission

__all__ = ["CodePair", "label_for", "all_pairs", "sample_pairs",
           "add_reversed"]


@dataclass(frozen=True)
class CodePair:
    """An ordered pair of submissions with its comparative label."""

    first: Submission
    second: Submission
    label: int
    gap_ms: float      # |t_first - t_second|, used by the sensitivity study

    def reversed(self) -> "CodePair":
        return CodePair(first=self.second, second=self.first,
                        label=1 - self.label, gap_ms=self.gap_ms)


def label_for(first: Submission, second: Submission) -> int:
    """Equation (1): 1 iff the first submission is slower-or-equal."""
    return 1 if first.mean_runtime_ms >= second.mean_runtime_ms else 0


def _make_pair(first: Submission, second: Submission) -> CodePair:
    return CodePair(
        first=first, second=second, label=label_for(first, second),
        gap_ms=abs(first.mean_runtime_ms - second.mean_runtime_ms),
    )


def all_pairs(submissions: list[Submission],
              include_self: bool = False) -> list[CodePair]:
    """Every ordered pair (i, j); ``include_self`` adds the N diagonal
    pairs (labelled 1 per eq. 1 since t_i >= t_i)."""
    pairs = []
    for i, first in enumerate(submissions):
        for j, second in enumerate(submissions):
            if i == j and not include_self:
                continue
            pairs.append(_make_pair(first, second))
    return pairs


def sample_pairs(submissions: list[Submission], count: int,
                 rng: np.random.Generator,
                 two_way: bool = False) -> list[CodePair]:
    """``count`` ordered pairs sampled uniformly without replacement.

    With ``two_way`` the sample is built from count/2 unordered pairs,
    each contributing both orderings — same total size, symmetric
    content (the paper finds this helps by up to ~2%).
    """
    n = len(submissions)
    if n < 2:
        raise ValueError("need at least two submissions to form pairs")
    total_ordered = n * (n - 1)
    count = min(count, total_ordered)
    if two_way:
        half = max(1, count // 2)
        unordered_total = n * (n - 1) // 2
        half = min(half, unordered_total)
        chosen = rng.choice(unordered_total, size=half, replace=False)
        pairs = []
        for flat in chosen:
            i, j = _unflatten_unordered(int(flat), n)
            pair = _make_pair(submissions[i], submissions[j])
            pairs.append(pair)
            pairs.append(pair.reversed())
        return pairs
    chosen = rng.choice(total_ordered, size=count, replace=False)
    pairs = []
    for flat in chosen:
        i, j = divmod(int(flat), n - 1)
        if j >= i:
            j += 1
        pairs.append(_make_pair(submissions[i], submissions[j]))
    return pairs


def _unflatten_unordered(flat: int, n: int) -> tuple[int, int]:
    """Map a flat index into the i<j upper-triangle pair (i, j)."""
    i = 0
    remaining = flat
    row = n - 1
    while remaining >= row:
        remaining -= row
        i += 1
        row -= 1
    return i, i + 1 + remaining


def add_reversed(pairs: list[CodePair]) -> list[CodePair]:
    """Append the reverse of every pair (doubles the dataset)."""
    return pairs + [p.reversed() for p in pairs]

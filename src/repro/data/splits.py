"""Disjoint train/test submission splits.

The paper's accuracy metric requires "the train and the test datasets
are disjoint" at the *submission* level — pairs are formed within each
side, never across, so no test program was seen during training.
"""

from __future__ import annotations

import numpy as np

from ..corpus.problem import Submission

__all__ = ["split_submissions"]


def split_submissions(submissions: list[Submission], train_fraction: float,
                      rng: np.random.Generator,
                      ) -> tuple[list[Submission], list[Submission]]:
    """Shuffle and split; both sides are guaranteed non-empty."""
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if len(submissions) < 4:
        raise ValueError("need at least 4 submissions for a meaningful split")
    order = rng.permutation(len(submissions))
    cut = int(round(len(submissions) * train_fraction))
    cut = min(max(cut, 2), len(submissions) - 2)
    train = [submissions[int(k)] for k in order[:cut]]
    test = [submissions[int(k)] for k in order[cut:]]
    return train, test

"""Pair generation, labeling, sampling, and splits (paper Section II-B)."""

from .batching import iter_batches
from .pairs import CodePair, add_reversed, all_pairs, label_for, sample_pairs
from .sampling import pairs_by_fraction, submission_sweep, subset_submissions
from .splits import split_submissions

__all__ = [
    "CodePair", "label_for", "all_pairs", "sample_pairs", "add_reversed",
    "subset_submissions", "pairs_by_fraction", "submission_sweep",
    "split_submissions", "iter_batches",
]

"""Mini-batch iteration over code pairs."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .pairs import CodePair

__all__ = ["iter_batches", "iter_index_batches"]


def iter_index_batches(n: int, batch_size: int,
                       rng: np.random.Generator | None = None,
                       shuffle: bool = True) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(n)`` in mini-batches.

    The generic core of mini-batching: callers gather their own items
    (pairs, featurized pairs, packed forests) from the yielded indices.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    order = np.arange(n)
    if shuffle:
        if rng is None:
            rng = np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        yield order[start:start + batch_size]


def iter_batches(pairs: list[CodePair], batch_size: int,
                 rng: np.random.Generator | None = None,
                 shuffle: bool = True) -> Iterator[list[CodePair]]:
    """Yield batches; shuffles a copy when requested."""
    for idx in iter_index_batches(len(pairs), batch_size, rng=rng,
                                  shuffle=shuffle):
        yield [pairs[int(k)] for k in idx]

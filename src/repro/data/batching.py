"""Mini-batch iteration over code pairs."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from .pairs import CodePair

__all__ = ["iter_batches"]


def iter_batches(pairs: list[CodePair], batch_size: int,
                 rng: np.random.Generator | None = None,
                 shuffle: bool = True) -> Iterator[list[CodePair]]:
    """Yield batches; shuffles a copy when requested."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    order = np.arange(len(pairs))
    if shuffle:
        if rng is None:
            rng = np.random.default_rng(0)
        rng.shuffle(order)
    for start in range(0, len(pairs), batch_size):
        yield [pairs[int(k)] for k in order[start:start + batch_size]]

"""Differential execution: prove two programs agree on seeded inputs.

The dynamic leg of the dead-mutant equivalence proof (the static leg is
:func:`repro.lang.analysis.mutate.prove_dead`): run the original and the
mutant through the judge interpreter on the *same* inputs and demand
byte-identical stdout. Dead code may burn cycles but can never change
output, so the comparison is exact — no token tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lang.parser import parse
from .errors import JudgeError
from .interp import Interpreter

__all__ = ["DifferentialReport", "differential_check", "seeded_inputs"]


@dataclass
class DifferentialReport:
    """Outcome of one differential run over a set of inputs."""

    equivalent: bool = True
    inputs_run: int = 0
    failures: list[dict] = field(default_factory=list)

    def note_failure(self, index: int, reason: str, a: str = "",
                     b: str = "") -> None:
        self.equivalent = False
        self.failures.append({"input_index": index, "reason": reason,
                              "stdout_a": a, "stdout_b": b})


def differential_check(source_a: str, source_b: str,
                       inputs: list[str],
                       max_cycles: int | None = None,
                       ) -> DifferentialReport:
    """Run both programs on every input; exact-stdout comparison.

    A runtime error in either program on any input counts as a failure
    (an inserted mutation must never introduce *or* mask a crash).
    Raises ``ValueError`` when no inputs are supplied — an empty
    differential proves nothing and must not look like success.
    """
    if not inputs:
        raise ValueError("differential_check needs at least one input")
    unit_a = parse(source_a)
    unit_b = parse(source_b)
    report = DifferentialReport()
    for index, input_text in enumerate(inputs):
        outputs = []
        for unit in (unit_a, unit_b):
            interp = (Interpreter(unit) if max_cycles is None
                      else Interpreter(unit, max_cycles=max_cycles))
            try:
                outputs.append(interp.run(input_text).stdout)
            except JudgeError as error:
                outputs.append(None)
                report.note_failure(index,
                                    f"{type(error).__name__}: {error}")
        report.inputs_run += 1
        out_a, out_b = outputs
        if out_a is not None and out_b is not None and out_a != out_b:
            report.note_failure(index, "stdout mismatch", out_a, out_b)
    return report


def seeded_inputs(family, count: int = 8, seed: int = 0xD1FF) -> list[str]:
    """``count`` deterministic judge inputs for a problem family.

    Uses the family's own test fabrication (so inputs match the
    problem's input format) but with an independent seed and test
    count — mutants are checked on inputs the generator never saw.
    """
    if count < 1:
        raise ValueError("need at least one input")
    inputs: list[str] = []
    round_no = 0
    while len(inputs) < count:
        rng = np.random.default_rng(seed + 7919 * round_no
                                    + int(family.seed))
        inputs.extend(test.input_text
                      for test in family.build_tests(rng))
        round_no += 1
    return inputs[:count]

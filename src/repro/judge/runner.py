"""The online-judge runner: evaluate a submission on test cases.

Mirrors the Codeforces flow the paper's data-collection tool scraped:
run each test case, check the output, report a verdict, and expose
per-test runtimes plus the mean runtime (the paper averages the tests
"to obtain a mean runtime for each problem").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..lang.parser import parse
from .cost import CostModel
from .errors import JudgeError, TimeLimitExceeded
from .interp import Interpreter
from .machine import MachineProfile

__all__ = ["Verdict", "TestCase", "JudgeReport", "Judge"]


class Verdict(Enum):
    OK = "OK"
    WRONG_ANSWER = "WRONG_ANSWER"
    TIME_LIMIT_EXCEEDED = "TIME_LIMIT_EXCEEDED"
    RUNTIME_ERROR = "RUNTIME_ERROR"
    COMPILATION_ERROR = "COMPILATION_ERROR"


@dataclass(frozen=True)
class TestCase:
    """One judge test: input text and the expected (token-wise) output."""

    input_text: str
    expected_output: str


@dataclass
class JudgeReport:
    verdict: Verdict
    test_runtimes_ms: list[int] = field(default_factory=list)
    test_cycles: list[int] = field(default_factory=list)
    peak_memory_kb: int = 0
    failed_test: int | None = None
    message: str = ""

    @property
    def mean_runtime_ms(self) -> float:
        if not self.test_runtimes_ms:
            return 0.0
        return sum(self.test_runtimes_ms) / len(self.test_runtimes_ms)

    @property
    def max_runtime_ms(self) -> int:
        return max(self.test_runtimes_ms, default=0)


def _tokens_match(actual: str, expected: str) -> bool:
    """Codeforces-style token comparison with float tolerance."""
    a_tokens = actual.split()
    e_tokens = expected.split()
    if len(a_tokens) != len(e_tokens):
        return False
    for a, e in zip(a_tokens, e_tokens):
        if a == e:
            continue
        try:
            if abs(float(a) - float(e)) <= 1e-6 * max(1.0, abs(float(e))):
                continue
        except ValueError:
            return False
        return False
    return True


class Judge:
    """Runs submissions against a problem's test cases."""

    def __init__(self, machine: MachineProfile | None = None,
                 cost_model: CostModel | None = None,
                 time_limit_ms: float = 20_000.0):
        self.machine = machine or MachineProfile()
        self.cost_model = cost_model or CostModel()
        self.time_limit_ms = time_limit_ms

    def judge_source(self, source: str, tests: list[TestCase]) -> JudgeReport:
        """Parse then judge; parse failures are compilation errors."""
        try:
            unit = parse(source)
        except Exception as exc:  # lexer/parser errors
            return JudgeReport(verdict=Verdict.COMPILATION_ERROR, message=str(exc))
        return self.judge_unit(unit, tests)

    def judge_unit(self, unit, tests: list[TestCase]) -> JudgeReport:
        if not tests:
            raise ValueError("judge needs at least one test case")
        report = JudgeReport(verdict=Verdict.OK)
        max_cycles = self.machine.time_limit_cycles(self.time_limit_ms)
        for index, test in enumerate(tests):
            interp = Interpreter(unit, cost_model=self.cost_model,
                                 max_cycles=max_cycles)
            try:
                result = interp.run(test.input_text)
            except TimeLimitExceeded:
                report.verdict = Verdict.TIME_LIMIT_EXCEEDED
                report.failed_test = index
                return report
            except JudgeError as exc:
                report.verdict = Verdict.RUNTIME_ERROR
                report.failed_test = index
                report.message = str(exc)
                return report
            report.test_cycles.append(result.cycles)
            report.test_runtimes_ms.append(self.machine.measure_ms(result.cycles))
            memory = ExecutionMemory.kb(result)
            if memory > report.peak_memory_kb:
                report.peak_memory_kb = memory
            if not _tokens_match(result.stdout, test.expected_output):
                report.verdict = Verdict.WRONG_ANSWER
                report.failed_test = index
                return report
        return report


class ExecutionMemory:
    """Helper namespace for memory accounting."""

    @staticmethod
    def kb(result) -> int:
        return result.peak_memory_kb

"""Execution substrate: interpreter + cost model + judge.

The paper's labels come from the Codeforces judge measuring real
submissions. Offline we reproduce that pipeline end-to-end: parse the
submission, interpret it on generated test cases, accumulate a cycle
cost per :class:`~repro.judge.cost.CostModel`, and convert cycles to a
noisy quantized millisecond measurement via
:class:`~repro.judge.machine.MachineProfile`.
"""

from .cost import CostModel
from .differential import DifferentialReport, differential_check, seeded_inputs
from .errors import InputExhausted, JudgeError, RuntimeFault, TimeLimitExceeded
from .interp import ExecutionResult, Interpreter
from .machine import MachineProfile
from .runner import Judge, JudgeReport, TestCase, Verdict

__all__ = [
    "CostModel", "MachineProfile",
    "Interpreter", "ExecutionResult",
    "Judge", "JudgeReport", "TestCase", "Verdict",
    "JudgeError", "RuntimeFault", "TimeLimitExceeded", "InputExhausted",
    "DifferentialReport", "differential_check", "seeded_inputs",
]

"""Tree-walking interpreter for the C++ subset.

Executes a parsed :class:`~repro.lang.cpp_ast.TranslationUnit` against a
test-case input, producing the program's stdout, the accumulated cycle
cost (see :mod:`repro.judge.cost`) and a peak-memory estimate. This is
the reproduction's substitute for actually compiling and running
submissions on the Codeforces judge: the *relative* costs of different
algorithms are preserved, which is all the comparative labels need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..lang.cpp_ast import (
    Assign, BinaryOp, Block, BoolLit, Break, Call, CharLit, Construct,
    Continue, Declarator, DoWhile, ExprStmt, FloatLit, For, FunctionDef,
    Ident, If, Index, IntLit, IoRead, IoWrite, Member, MethodCall, Node,
    PostfixOp, Return, StringLit, Ternary, TranslationUnit, TypeSpec,
    UnaryOp, VarDecl, While,
)
from .cost import CostModel
from .errors import InputExhausted, RuntimeFault, TimeLimitExceeded
from .values import (
    Cell, IterRef, MapVal, NUMERIC_BASES, PairVal, PriorityQueueVal,
    QueueVal, SetVal, StackVal, VectorVal, container_size, copy_value,
    deep_element_count, default_value, truthy,
)

__all__ = ["Interpreter", "ExecutionResult"]

_INT_BASES = NUMERIC_BASES - {"double", "float", "long double"}


@dataclass
class ExecutionResult:
    stdout: str
    cycles: int
    peak_elements: int

    @property
    def peak_memory_kb(self) -> int:
        """Rough KB estimate: 8 bytes per tracked element + 64 KB base."""
        return 64 + (self.peak_elements * 8) // 1024


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class _Scope:
    cells: dict[str, Cell] = field(default_factory=dict)


class Interpreter:
    """Executes one program. Create a fresh instance per run."""

    def __init__(self, unit: TranslationUnit, cost_model: CostModel | None = None,
                 max_cycles: int = 50_000_000, memory_probe_interval: int = 2048):
        self.unit = unit
        self.cost = cost_model or CostModel()
        self.max_cycles = max_cycles
        self.cycles = 0
        self.peak_elements = 0
        self._probe_interval = memory_probe_interval
        self._ops_since_probe = 0
        self.functions: dict[str, FunctionDef] = {
            f.name: f for f in unit.functions
        }
        self._globals = _Scope()
        self._scopes: list[list[_Scope]] = []  # one stack of scopes per frame
        self._input_tokens: list[str] = []
        self._input_pos = 0
        self._raw_input = ""
        self._out: list[str] = []

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run(self, stdin_text: str = "") -> ExecutionResult:
        import sys

        if sys.getrecursionlimit() < 60_000:
            # Interpreted recursion multiplies Python frames; submissions
            # recurse to a few thousand levels (DFS on trees/DAGs).
            sys.setrecursionlimit(60_000)
        if "main" not in self.functions:
            raise RuntimeFault("program has no main() function")
        self._raw_input = stdin_text
        self._input_tokens = stdin_text.split()
        self._input_pos = 0
        self._out = []
        for decl in self.unit.globals:
            self._exec_var_decl(decl, self._globals)
        try:
            self._call_function(self.functions["main"], [])
        except _ReturnSignal:
            pass
        return ExecutionResult(stdout="".join(self._out), cycles=self.cycles,
                               peak_elements=self.peak_elements)

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _charge(self, cycles: int) -> None:
        self.cycles += cycles
        if self.cycles > self.max_cycles:
            raise TimeLimitExceeded(self.cycles)

    def _track_memory(self) -> None:
        """Periodically estimate live elements (full scans are costly)."""
        self._ops_since_probe += 1
        if self._ops_since_probe < self._probe_interval:
            return
        self._ops_since_probe = 0
        total = 0
        for cell in self._globals.cells.values():
            total += deep_element_count(cell.value)
        for frame in self._scopes:
            for scope in frame:
                for cell in scope.cells.values():
                    total += deep_element_count(cell.value)
        if total > self.peak_elements:
            self.peak_elements = total

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def _lookup(self, name: str) -> Cell:
        if self._scopes:
            for scope in reversed(self._scopes[-1]):
                cell = scope.cells.get(name)
                if cell is not None:
                    return cell
        cell = self._globals.cells.get(name)
        if cell is not None:
            return cell
        raise RuntimeFault(f"undefined variable {name!r}")

    def _declare(self, name: str, cell: Cell) -> None:
        scope = self._scopes[-1][-1] if self._scopes else self._globals
        scope.cells[name] = cell

    # ------------------------------------------------------------------
    # functions
    # ------------------------------------------------------------------
    def _call_function(self, fn: FunctionDef, args: list):
        self._charge(self.cost.call_overhead)
        if len(self._scopes) > 4000:
            raise RuntimeFault("stack overflow: recursion too deep")
        if len(args) != len(fn.params):
            raise RuntimeFault(
                f"{fn.name}() expects {len(fn.params)} args, got {len(args)}")
        frame = [_Scope()]
        for param, arg in zip(fn.params, args):
            if param.by_ref:
                if not isinstance(arg, Cell):
                    raise RuntimeFault(
                        f"reference parameter {param.name!r} needs an lvalue")
                frame[0].cells[param.name] = arg
            else:
                value = arg.value if isinstance(arg, Cell) else arg
                elements = container_size(value)
                if elements:
                    self._charge(self.cost.copy_cost(elements))
                frame[0].cells[param.name] = Cell(copy_value(value), param.type)
        self._scopes.append(frame)
        try:
            self._exec_stmt(fn.body)
        except _ReturnSignal as signal:
            return signal.value
        finally:
            self._scopes.pop()
        return default_value(fn.return_type) if fn.return_type.base != "void" else None

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec_stmt(self, node: Node) -> None:
        self._charge(self.cost.statement)
        self._track_memory()
        if isinstance(node, Block):
            self._scopes[-1].append(_Scope())
            try:
                for stmt in node.statements:
                    self._exec_stmt(stmt)
            finally:
                self._scopes[-1].pop()
        elif isinstance(node, VarDecl):
            self._exec_var_decl(node, None)
        elif isinstance(node, ExprStmt):
            self._eval(node.expr)
        elif isinstance(node, If):
            self._charge(self.cost.branch)
            if truthy(self._eval(node.cond)):
                self._exec_stmt(node.then)
            elif node.orelse is not None:
                self._exec_stmt(node.orelse)
        elif isinstance(node, For):
            self._scopes[-1].append(_Scope())
            try:
                if node.init is not None:
                    self._exec_stmt(node.init)
                while node.cond is None or truthy(self._eval(node.cond)):
                    self._charge(self.cost.loop_iteration)
                    try:
                        self._exec_stmt(node.body)
                    except _ContinueSignal:
                        pass
                    except _BreakSignal:
                        break
                    if node.step is not None:
                        self._eval(node.step)
            finally:
                self._scopes[-1].pop()
        elif isinstance(node, While):
            while truthy(self._eval(node.cond)):
                self._charge(self.cost.loop_iteration)
                try:
                    self._exec_stmt(node.body)
                except _ContinueSignal:
                    continue
                except _BreakSignal:
                    break
        elif isinstance(node, DoWhile):
            while True:
                self._charge(self.cost.loop_iteration)
                try:
                    self._exec_stmt(node.body)
                except _ContinueSignal:
                    pass
                except _BreakSignal:
                    break
                if not truthy(self._eval(node.cond)):
                    break
        elif isinstance(node, Return):
            value = self._eval(node.value) if node.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(node, Break):
            raise _BreakSignal()
        elif isinstance(node, Continue):
            raise _ContinueSignal()
        elif isinstance(node, IoRead):
            for target in node.targets:
                self._charge(self.cost.io_token)
                self._read_into(target)
        elif isinstance(node, IoWrite):
            for value_node in node.values:
                self._charge(self.cost.io_token)
                self._write(self._eval(value_node))
        else:
            raise RuntimeFault(f"cannot execute node {type(node).__name__}")

    def _exec_var_decl(self, decl: VarDecl, scope: _Scope | None) -> None:
        for declarator in decl.declarators:
            value = self._initial_value(decl.type, declarator)
            cell = Cell(value, decl.type)
            if scope is not None:
                scope.cells[declarator.name] = cell
            else:
                self._declare(declarator.name, cell)

    def _initial_value(self, type_spec: TypeSpec, declarator: Declarator):
        if declarator.array_sizes:
            # int a[N][M] -> nested vectors, zero-initialized (globals in
            # C++ are zeroed; contest code relies on that).
            sizes = [self._as_int(self._eval(s)) for s in declarator.array_sizes]

            def build(dims: list[int]):
                if not dims:
                    return default_value(type_spec)
                self._charge(self.cost.copy_cost(dims[0]))
                return VectorVal([build(dims[1:]) for _ in range(dims[0])],
                                 elem_type=type_spec)

            return build(sizes)
        init = declarator.init
        if init is None:
            return default_value(type_spec)
        if isinstance(init, Call) and init.name == "__ctor__":
            args = [self._eval(a) for a in init.args]
            return self._construct(type_spec, args)
        value = self._eval(init)
        elements = container_size(value)
        if elements:
            self._charge(self.cost.copy_cost(elements))
        return self._coerce(copy_value(value), type_spec)

    def _construct(self, type_spec: TypeSpec, args: list):
        base = type_spec.base
        if base == "vector":
            elem = type_spec.args[0] if type_spec.args else TypeSpec(base="int")
            if not args:
                return VectorVal(elem_type=elem)
            count = self._as_int(args[0])
            fill = args[1] if len(args) > 1 else default_value(elem)
            self._charge(self.cost.copy_cost(count))
            return VectorVal([copy_value(fill) for _ in range(count)],
                             elem_type=elem)
        if base == "string":
            if len(args) == 2:
                count = self._as_int(args[0])
                self._charge(self.cost.copy_cost(count))
                return str(args[1]) * count
            if len(args) == 1:
                return str(args[0])
            return ""
        if not args:
            return default_value(type_spec)
        raise RuntimeFault(f"unsupported constructor for {type_spec}")

    @staticmethod
    def _coerce(value, type_spec: TypeSpec):
        base = type_spec.base
        if base in _INT_BASES and isinstance(value, float):
            return int(value)
        if base in ("double", "float", "long double") and isinstance(value, int):
            return float(value)
        return value

    # ------------------------------------------------------------------
    # IO
    # ------------------------------------------------------------------
    def _next_token(self) -> str:
        if self._input_pos >= len(self._input_tokens):
            raise InputExhausted("cin read past end of input")
        token = self._input_tokens[self._input_pos]
        self._input_pos += 1
        return token

    def _read_into(self, target: Node) -> None:
        cell_like = self._resolve_lvalue(target)
        declared = self._lvalue_type(target)
        token_kind = declared.base if declared is not None else None
        if token_kind in ("double", "float", "long double"):
            value: object = float(self._next_token())
        elif token_kind == "char":
            token = self._next_token()
            value = token[0]
        elif token_kind == "string":
            value = self._next_token()
        else:
            value = int(self._next_token())
        self._store_lvalue(cell_like, value)

    def _write(self, value) -> None:
        if isinstance(value, float):
            if math.isfinite(value) and value == int(value) and abs(value) < 1e15:
                self._out.append(f"{value:.6f}")
            else:
                self._out.append(f"{value:.6f}")
        elif isinstance(value, bool):
            self._out.append("1" if value else "0")
        else:
            self._out.append(str(value))

    # ------------------------------------------------------------------
    # lvalues
    # ------------------------------------------------------------------
    def _resolve_lvalue(self, node: Node):
        """Return a writable location: Cell, (vector, index), or
        (pair, field) / (map, key)."""
        if isinstance(node, Ident):
            return self._lookup(node.name)
        if isinstance(node, Index):
            obj = self._eval_lvalue_container(node.obj)
            key = self._eval(node.index)
            self._charge(self.cost.index)
            if isinstance(obj, VectorVal):
                return (obj, self._as_int(key))
            if isinstance(obj, MapVal):
                self._charge(self.cost.tree_op(len(obj)) if obj.ordered
                             else self.cost.hash_op)
                return (obj, self._hashable(key))
            raise RuntimeFault(f"cannot index into {type(obj).__name__}")
        if isinstance(node, Member):
            obj = self._eval_lvalue_container(node.obj)
            if isinstance(obj, PairVal) and node.field_name in ("first", "second"):
                self._charge(self.cost.member)
                return (obj, node.field_name)
            raise RuntimeFault(f"no assignable member {node.field_name!r}")
        raise RuntimeFault(f"{type(node).__name__} is not an lvalue")

    def _eval_lvalue_container(self, node: Node):
        """Evaluate the container part of an lvalue *without* copying."""
        if isinstance(node, Ident):
            return self._lookup(node.name).value
        if isinstance(node, Index):
            loc = self._resolve_lvalue(node)
            return self._load_location(loc)
        if isinstance(node, Member):
            loc = self._resolve_lvalue(node)
            return self._load_location(loc)
        return self._eval(node)

    def _load_location(self, loc):
        if isinstance(loc, Cell):
            return loc.value
        obj, key = loc
        if isinstance(obj, VectorVal):
            return obj.at(key)
        if isinstance(obj, MapVal):
            if key not in obj.entries:
                obj.entries[key] = default_value(obj.value_type)
            return obj.entries[key]
        if isinstance(obj, PairVal):
            return getattr(obj, key)
        raise RuntimeFault("bad location")

    def _store_lvalue(self, loc, value) -> None:
        self._charge(self.cost.assign)
        elements = container_size(value)
        if elements:
            self._charge(self.cost.copy_cost(elements))
            value = copy_value(value)
        if isinstance(loc, Cell):
            loc.value = self._coerce(value, loc.type)
            return
        obj, key = loc
        if isinstance(obj, VectorVal):
            obj.set(key, value)
        elif isinstance(obj, MapVal):
            obj.entries[key] = value
        elif isinstance(obj, PairVal):
            setattr(obj, key, value)
        else:
            raise RuntimeFault("bad store location")

    def _lvalue_type(self, node: Node) -> TypeSpec | None:
        if isinstance(node, Ident):
            return self._lookup(node.name).type
        if isinstance(node, Index):
            inner = self._lvalue_type(node.obj)
            if inner is not None and inner.base == "vector" and inner.args:
                return inner.args[0]
            if inner is not None and inner.base in ("map", "unordered_map") \
                    and len(inner.args) > 1:
                return inner.args[1]
            if inner is not None and inner.base == "string":
                return TypeSpec(base="char")
            return None
        if isinstance(node, Member):
            inner = self._lvalue_type(node.obj)
            if inner is not None and inner.base == "pair" and len(inner.args) == 2:
                return inner.args[0] if node.field_name == "first" else inner.args[1]
            return None
        return None

    @staticmethod
    def _hashable(key):
        if isinstance(key, PairVal):
            return (key.first, key.second)
        return key

    @staticmethod
    def _as_int(value) -> int:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return int(value)
        if isinstance(value, str) and len(value) == 1:
            return ord(value)
        raise RuntimeFault(f"expected integer, got {type(value).__name__}")

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, node: Node):
        if isinstance(node, IntLit):
            return node.value
        if isinstance(node, FloatLit):
            return node.value
        if isinstance(node, BoolLit):
            return 1 if node.value else 0
        if isinstance(node, CharLit):
            return node.value
        if isinstance(node, StringLit):
            return node.value
        if isinstance(node, Ident):
            if node.name == "endl":
                return "\n"
            return self._lookup(node.name).value
        if isinstance(node, BinaryOp):
            return self._eval_binop(node)
        if isinstance(node, UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, PostfixOp):
            return self._eval_postfix(node)
        if isinstance(node, Assign):
            return self._eval_assign(node)
        if isinstance(node, Ternary):
            self._charge(self.cost.branch)
            if truthy(self._eval(node.cond)):
                return self._eval(node.then)
            return self._eval(node.orelse)
        if isinstance(node, Index):
            loc = self._resolve_lvalue(node)
            obj, key = loc
            if isinstance(obj, VectorVal):
                return obj.at(key)
            return self._load_location(loc)
        if isinstance(node, Member):
            obj = self._eval_lvalue_container(node.obj)
            self._charge(self.cost.member)
            if isinstance(obj, PairVal):
                return getattr(obj, node.field_name)
            raise RuntimeFault(f"no member {node.field_name!r}")
        if isinstance(node, MethodCall):
            return self._eval_method(node)
        if isinstance(node, Call):
            return self._eval_call(node)
        if isinstance(node, Construct):
            args = [self._eval(a) for a in node.args]
            return self._construct(node.type, args)
        raise RuntimeFault(f"cannot evaluate node {type(node).__name__}")

    # -- operators ------------------------------------------------------
    def _eval_binop(self, node: BinaryOp):
        op = node.op
        if op == "&&":
            self._charge(self.cost.logical)
            return 1 if truthy(self._eval(node.left)) and \
                truthy(self._eval(node.right)) else 0
        if op == "||":
            self._charge(self.cost.logical)
            return 1 if truthy(self._eval(node.left)) or \
                truthy(self._eval(node.right)) else 0
        left = self._eval(node.left)
        right = self._eval(node.right)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self._charge(self.cost.compare)
            if isinstance(left, PairVal) and isinstance(right, PairVal):
                left = (left.first, left.second)
                right = (right.first, right.second)
            result = {
                "==": left == right, "!=": left != right,
                "<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
            }[op]
            return 1 if result else 0
        if op == "+" and isinstance(left, str) and isinstance(right, str) \
                and (len(left) != 1 or len(right) != 1):
            # String concatenation; two single-char operands fall through
            # to numeric addition ('a' + 'b' is an int in C++).
            self._charge(self.cost.string_per_char * (len(left) + len(right) + 1))
            return left + right
        left_num = self._numeric(left)
        right_num = self._numeric(right)
        is_float = isinstance(left_num, float) or isinstance(right_num, float)
        if op in ("+", "-", "*"):
            self._charge(self.cost.float_arith if is_float else self.cost.int_arith)
            return {"+": left_num + right_num, "-": left_num - right_num,
                    "*": left_num * right_num}[op]
        if op == "/":
            self._charge(self.cost.int_divmod)
            if is_float:
                if right_num == 0:
                    raise RuntimeFault("division by zero")
                return left_num / right_num
            if right_num == 0:
                raise RuntimeFault("division by zero")
            quotient = abs(left_num) // abs(right_num)
            return quotient if (left_num >= 0) == (right_num >= 0) else -quotient
        if op == "%":
            self._charge(self.cost.int_divmod)
            if right_num == 0:
                raise RuntimeFault("modulo by zero")
            remainder = abs(left_num) % abs(right_num)
            return remainder if left_num >= 0 else -remainder
        if op in ("&", "|", "^", "<<", ">>"):
            self._charge(self.cost.int_arith)
            li, ri = int(left_num), int(right_num)
            return {"&": li & ri, "|": li | ri, "^": li ^ ri,
                    "<<": li << ri, ">>": li >> ri}[op]
        raise RuntimeFault(f"unsupported binary operator {op!r}")

    def _numeric(self, value):
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str) and len(value) == 1:
            return ord(value)
        raise RuntimeFault(f"expected a number, got {type(value).__name__}")

    def _eval_unary(self, node: UnaryOp):
        if node.op in ("++", "--"):
            loc = self._resolve_lvalue(node.operand)
            current = self._numeric(self._load_location(loc))
            self._charge(self.cost.int_arith)
            updated = current + (1 if node.op == "++" else -1)
            self._store_lvalue(loc, updated)
            return updated
        value = self._eval(node.operand)
        self._charge(self.cost.int_arith)
        if node.op == "-":
            return -self._numeric(value)
        if node.op == "+":
            return self._numeric(value)
        if node.op == "!":
            return 0 if truthy(value) else 1
        if node.op == "~":
            return ~self._as_int(value)
        raise RuntimeFault(f"unsupported unary operator {node.op!r}")

    def _eval_postfix(self, node: PostfixOp):
        loc = self._resolve_lvalue(node.operand)
        current = self._numeric(self._load_location(loc))
        self._charge(self.cost.int_arith)
        updated = current + (1 if node.op == "++" else -1)
        self._store_lvalue(loc, updated)
        return current

    def _eval_assign(self, node: Assign):
        if node.op == "=":
            value = self._eval(node.value)
            loc = self._resolve_lvalue(node.target)
            self._store_lvalue(loc, value)
            return value
        loc = self._resolve_lvalue(node.target)
        current = self._load_location(loc)
        operand = self._eval(node.value)
        value = self._apply_compound(node.op[:-1], current, operand)
        self._store_lvalue(loc, value)
        return value

    def _apply_compound(self, op: str, current, operand):
        if op == "+" and isinstance(current, str) and isinstance(operand, str):
            self._charge(self.cost.string_per_char * (len(operand) + 1))
            return current + operand
        left = self._numeric(current)
        right = self._numeric(operand)
        is_float = isinstance(left, float) or isinstance(right, float)
        self._charge(self.cost.float_arith if is_float else self.cost.int_arith)
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            self._charge(self.cost.int_divmod)
            if right == 0:
                raise RuntimeFault("division by zero")
            if is_float:
                return left / right
            quotient = abs(left) // abs(right)
            return quotient if (left >= 0) == (right >= 0) else -quotient
        if op == "%":
            self._charge(self.cost.int_divmod)
            if right == 0:
                raise RuntimeFault("modulo by zero")
            remainder = abs(left) % abs(right)
            return remainder if left >= 0 else -remainder
        if op in ("&", "|", "^", "<<", ">>"):
            li, ri = int(left), int(right)
            return {"&": li & ri, "|": li | ri, "^": li ^ ri,
                    "<<": li << ri, ">>": li >> ri}[op]
        raise RuntimeFault(f"unsupported compound operator {op}=")

    # -- method calls -----------------------------------------------------
    def _eval_method(self, node: MethodCall):
        self._charge(self.cost.method_overhead)
        obj = self._eval_lvalue_container(node.obj)
        args = [self._eval(a) for a in node.args]
        method = node.method
        if isinstance(obj, VectorVal):
            return self._vector_method(obj, method, args)
        if isinstance(obj, str):
            return self._string_method(node, obj, method, args)
        if isinstance(obj, MapVal):
            return self._map_method(obj, method, args)
        if isinstance(obj, SetVal):
            return self._set_method(obj, method, args)
        if isinstance(obj, (QueueVal, StackVal, PriorityQueueVal)):
            return self._adapter_method(obj, method, args)
        if isinstance(obj, PairVal) and method in ("first", "second"):
            return getattr(obj, method)
        raise RuntimeFault(
            f"no method {method!r} on {type(obj).__name__}")

    def _vector_method(self, vec: VectorVal, method: str, args: list):
        if method in ("push_back", "emplace_back"):
            self._charge(self.cost.push_amortized)
            value = args[0]
            if container_size(value):
                self._charge(self.cost.copy_cost(container_size(value)))
                value = copy_value(value)
            vec.items.append(value)
            return None
        if method == "pop_back":
            self._charge(self.cost.pop)
            if not vec.items:
                raise RuntimeFault("pop_back on empty vector")
            vec.items.pop()
            return None
        if method == "size":
            return len(vec)
        if method == "empty":
            return 1 if not vec.items else 0
        if method == "clear":
            vec.items.clear()
            return None
        if method == "back":
            if not vec.items:
                raise RuntimeFault("back() on empty vector")
            return vec.items[-1]
        if method == "front":
            if not vec.items:
                raise RuntimeFault("front() on empty vector")
            return vec.items[0]
        if method == "begin":
            return IterRef(vec, 0)
        if method == "end":
            return IterRef(vec, len(vec))
        if method == "rbegin":
            return IterRef(vec, 0, reversed=True)
        if method == "rend":
            return IterRef(vec, len(vec), reversed=True)
        if method == "resize":
            new_size = self._as_int(args[0])
            fill = args[1] if len(args) > 1 else default_value(vec.elem_type)
            self._charge(self.cost.copy_cost(abs(new_size - len(vec))))
            while len(vec.items) < new_size:
                vec.items.append(copy_value(fill))
            del vec.items[new_size:]
            return None
        if method == "at":
            self._charge(self.cost.index)
            return vec.at(self._as_int(args[0]))
        raise RuntimeFault(f"unsupported vector method {method!r}")

    def _string_method(self, node: MethodCall, text: str, method: str, args: list):
        if method in ("size", "length"):
            return len(text)
        if method == "empty":
            return 1 if not text else 0
        if method == "substr":
            start = self._as_int(args[0])
            count = self._as_int(args[1]) if len(args) > 1 else len(text) - start
            self._charge(self.cost.string_per_char * max(1, count))
            return text[start:start + count]
        if method == "back":
            if not text:
                raise RuntimeFault("back() on empty string")
            return text[-1]
        if method == "front":
            if not text:
                raise RuntimeFault("front() on empty string")
            return text[0]
        if method == "push_back":
            loc = self._resolve_lvalue(node.obj)
            self._charge(self.cost.push_amortized)
            self._store_lvalue(loc, text + args[0])
            return None
        if method == "pop_back":
            loc = self._resolve_lvalue(node.obj)
            self._store_lvalue(loc, text[:-1])
            return None
        if method == "find":
            self._charge(self.cost.string_per_char * max(1, len(text)))
            needle = args[0]
            pos = text.find(needle)
            return pos if pos >= 0 else 10 ** 18  # string::npos stand-in
        if method == "begin":
            return IterRef(text, 0)
        if method == "end":
            return IterRef(text, len(text))
        raise RuntimeFault(f"unsupported string method {method!r}")

    def _map_method(self, mp: MapVal, method: str, args: list):
        cost = self.cost.tree_op(len(mp)) if mp.ordered else self.cost.hash_op
        if method == "count":
            self._charge(cost)
            return 1 if self._hashable(args[0]) in mp.entries else 0
        if method == "size":
            return len(mp)
        if method == "empty":
            return 1 if not mp.entries else 0
        if method == "clear":
            mp.entries.clear()
            return None
        if method == "erase":
            self._charge(cost)
            mp.entries.pop(self._hashable(args[0]), None)
            return None
        raise RuntimeFault(f"unsupported map method {method!r}")

    def _set_method(self, st: SetVal, method: str, args: list):
        cost = self.cost.tree_op(len(st)) if st.ordered else self.cost.hash_op
        if method == "insert":
            self._charge(cost)
            key = self._hashable(args[0])
            if st.multi:
                st.items[key] = st.items.get(key, 0) + 1
            else:
                st.items[key] = 1
            return None
        if method == "count":
            self._charge(cost)
            return st.items.get(self._hashable(args[0]), 0)
        if method == "erase":
            self._charge(cost)
            key = self._hashable(args[0])
            if key in st.items:
                if st.multi and st.items[key] > 1:
                    st.items[key] -= 1
                else:
                    del st.items[key]
            return None
        if method == "size":
            return len(st)
        if method == "empty":
            return 1 if len(st) == 0 else 0
        if method == "clear":
            st.items.clear()
            return None
        raise RuntimeFault(f"unsupported set method {method!r}")

    def _adapter_method(self, obj, method: str, args: list):
        if isinstance(obj, QueueVal):
            if method == "push":
                self._charge(self.cost.push_amortized)
                obj.items.append(args[0])
                return None
            if method == "pop":
                self._charge(self.cost.pop)
                if not obj.items:
                    raise RuntimeFault("pop on empty queue")
                obj.items.popleft()
                return None
            if method == "front":
                if not obj.items:
                    raise RuntimeFault("front on empty queue")
                return obj.items[0]
            if method == "back":
                return obj.items[-1]
        if isinstance(obj, StackVal):
            if method == "push":
                self._charge(self.cost.push_amortized)
                obj.items.append(args[0])
                return None
            if method == "pop":
                self._charge(self.cost.pop)
                if not obj.items:
                    raise RuntimeFault("pop on empty stack")
                obj.items.pop()
                return None
            if method == "top":
                if not obj.items:
                    raise RuntimeFault("top on empty stack")
                return obj.items[-1]
        if isinstance(obj, PriorityQueueVal):
            self._charge(self.cost.tree_op(len(obj)))
            if method == "push":
                obj.push(args[0])
                return None
            if method == "pop":
                obj.pop()
                return None
            if method == "top":
                return obj.top()
        if method == "size":
            return len(obj)
        if method == "empty":
            return 1 if len(obj) == 0 else 0
        raise RuntimeFault(f"unsupported method {method!r} on "
                           f"{type(obj).__name__}")

    # -- free function calls -----------------------------------------------
    def _eval_call(self, node: Call):
        name = node.name
        if name in self.functions:
            args = []
            fn = self.functions[name]
            for param, arg_node in zip(fn.params, node.args):
                if param.by_ref:
                    args.append(self._ref_arg(arg_node))
                else:
                    args.append(self._eval(arg_node))
            if len(node.args) != len(fn.params):
                raise RuntimeFault(
                    f"{name}() expects {len(fn.params)} args, got {len(node.args)}")
            return self._call_function(fn, args)
        return self._eval_builtin(node)

    def _ref_arg(self, node: Node) -> Cell:
        if isinstance(node, Ident):
            return self._lookup(node.name)
        # References to elements (v[i]) are modelled with a temporary cell
        # view; mutation through them is not needed by the corpus.
        raise RuntimeFault("only plain variables may bind to references")

    def _eval_builtin(self, node: Call):
        name = node.name
        if name.startswith("__cast_"):
            value = self._eval(node.args[0])
            target = name[len("__cast_"):-2].replace("_", " ")
            self._charge(self.cost.int_arith)
            if target in ("double", "float", "long double"):
                return float(self._numeric(value))
            if target == "char":
                return chr(self._as_int(value))
            return int(self._numeric(value))
        args = [self._eval(a) for a in node.args]
        if name == "max":
            self._charge(self.cost.compare)
            return max(args)
        if name == "min":
            self._charge(self.cost.compare)
            return min(args)
        if name == "abs" or name == "fabs" or name == "llabs":
            self._charge(self.cost.int_arith)
            return abs(args[0])
        if name == "sqrt" or name == "sqrtl":
            self._charge(self.cost.math_builtin)
            if args[0] < 0:
                raise RuntimeFault("sqrt of negative value")
            return math.sqrt(args[0])
        if name == "pow":
            self._charge(self.cost.math_builtin)
            return float(args[0]) ** float(args[1])
        if name == "floor":
            self._charge(self.cost.math_builtin)
            return float(math.floor(args[0]))
        if name == "ceil":
            self._charge(self.cost.math_builtin)
            return float(math.ceil(args[0]))
        if name == "round":
            self._charge(self.cost.math_builtin)
            return float(round(args[0]))
        if name == "log" or name == "log2" or name == "log10":
            self._charge(self.cost.math_builtin)
            fn = {"log": math.log, "log2": math.log2, "log10": math.log10}[name]
            return fn(args[0])
        if name in ("gcd", "__gcd"):
            self._charge(self.cost.math_builtin)
            return math.gcd(int(args[0]), int(args[1]))
        if name == "swap":
            if len(node.args) != 2:
                raise RuntimeFault("swap needs two arguments")
            loc_a = self._resolve_lvalue(node.args[0])
            loc_b = self._resolve_lvalue(node.args[1])
            a = self._load_location(loc_a)
            b = self._load_location(loc_b)
            self._store_lvalue(loc_a, b)
            self._store_lvalue(loc_b, a)
            return None
        if name == "sort":
            return self._builtin_sort(args)
        if name == "reverse":
            return self._builtin_reverse(args)
        if name == "to_string":
            self._charge(self.cost.string_per_char * 8)
            value = args[0]
            if isinstance(value, float):
                return f"{value:.6f}"
            return str(value)
        if name == "stoi" or name == "stoll":
            self._charge(self.cost.string_per_char * max(1, len(str(args[0]))))
            return int(args[0])
        if name == "isdigit":
            self._charge(self.cost.compare)
            ch = args[0]
            return 1 if isinstance(ch, str) and ch.isdigit() else 0
        if name == "isalpha":
            self._charge(self.cost.compare)
            ch = args[0]
            return 1 if isinstance(ch, str) and ch.isalpha() else 0
        if name == "tolower":
            self._charge(self.cost.int_arith)
            return args[0].lower() if isinstance(args[0], str) else args[0]
        if name == "toupper":
            self._charge(self.cost.int_arith)
            return args[0].upper() if isinstance(args[0], str) else args[0]
        raise RuntimeFault(f"unknown function {name!r}")

    def _sort_key(self, value):
        if isinstance(value, PairVal):
            return (value.first, value.second)
        return value

    def _builtin_sort(self, args: list):
        if len(args) != 2 or not isinstance(args[0], IterRef) \
                or not isinstance(args[1], IterRef):
            raise RuntimeFault("sort expects begin/end iterators")
        first, last = args
        if first.container is not last.container:
            raise RuntimeFault("sort iterators must reference one container")
        container = first.container
        if not isinstance(container, VectorVal):
            raise RuntimeFault("sort only supports vectors")
        lo, hi = first.position, last.position
        if first.reversed != last.reversed:
            raise RuntimeFault("mismatched iterator directions")
        segment_len = hi - lo
        self._charge(self.cost.sort_cost(max(0, segment_len)))
        if first.reversed:
            # sort(v.rbegin(), v.rend()) -> descending order
            items = sorted(container.items, key=self._sort_key, reverse=True)
            container.items[:] = items
        else:
            container.items[lo:hi] = sorted(container.items[lo:hi],
                                            key=self._sort_key)
        return None

    def _builtin_reverse(self, args: list):
        if len(args) != 2 or not isinstance(args[0], IterRef):
            raise RuntimeFault("reverse expects begin/end iterators")
        container = args[0].container
        if isinstance(container, VectorVal):
            self._charge(self.cost.copy_cost(len(container)))
            container.items.reverse()
            return None
        raise RuntimeFault("reverse only supports vectors")

"""Machine profile: cycles -> reported milliseconds with measurement noise.

The Codeforces judge reports wall-clock milliseconds quantized to 1 ms,
with run-to-run jitter. :class:`MachineProfile` models exactly that:
a deterministic cycles-per-millisecond rate (one "machine" for the whole
corpus — the paper's comparative framing assumes all submissions ran on
the same system), multiplicative lognormal noise and additive jitter for
the measurement, and 1 ms quantization with a 1 ms floor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MachineProfile"]


@dataclass
class MachineProfile:
    """Parameters of the simulated judging machine."""

    cycles_per_ms: float = 1000.0
    noise_sigma: float = 0.04       # lognormal sigma on the measurement
    jitter_ms: float = 0.5          # uniform additive measurement jitter
    seed: int = 2021

    def __post_init__(self):
        if self.cycles_per_ms <= 0:
            raise ValueError("cycles_per_ms must be positive")
        self._rng = np.random.default_rng(self.seed)

    def ideal_ms(self, cycles: int) -> float:
        """Noise-free runtime in milliseconds."""
        return cycles / self.cycles_per_ms

    def measure_ms(self, cycles: int) -> int:
        """One noisy, quantized runtime measurement (>= 1 ms)."""
        ideal = self.ideal_ms(cycles)
        noisy = ideal * float(np.exp(self._rng.normal(0.0, self.noise_sigma)))
        noisy += float(self._rng.uniform(0.0, self.jitter_ms))
        return max(1, int(round(noisy)))

    def time_limit_cycles(self, limit_ms: float) -> int:
        return int(limit_ms * self.cycles_per_ms)

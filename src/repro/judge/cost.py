"""Abstract cost model: every interpreted operation charges cycles.

The judge's "runtime" is the accumulated cycle count mapped through a
:class:`~repro.judge.machine.MachineProfile`. Costs are deliberately
coarse (unit-scale for scalar ops, size-dependent for container and
library operations) — what matters for the reproduction is that
*algorithmically different* solutions to the same problem accumulate
costs with the right asymptotic ordering, which is what separates fast
from slow submissions on the real platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Cycle charges per operation category."""

    int_arith: int = 1
    int_divmod: int = 4
    float_arith: int = 2
    compare: int = 1
    logical: int = 1
    assign: int = 1
    copy_per_element: int = 1
    index: int = 1
    member: int = 1
    call_overhead: int = 8
    method_overhead: int = 2
    push_amortized: int = 3
    pop: int = 1
    tree_op_base: int = 6       # map/set: base × log2(n + 2)
    hash_op: int = 10           # unordered containers: flat cost
    io_token: int = 25
    string_per_char: int = 1
    statement: int = 1
    branch: int = 1
    loop_iteration: int = 2
    sort_per_cmp: int = 3
    math_builtin: int = 12

    def tree_op(self, size: int) -> int:
        return self.tree_op_base * max(1, int(math.log2(size + 2)))

    def sort_cost(self, size: int) -> int:
        if size <= 1:
            return self.sort_per_cmp
        return self.sort_per_cmp * int(size * math.log2(size))

    def copy_cost(self, elements: int) -> int:
        return self.copy_per_element * elements

"""Runtime error types raised while judging a submission."""

from __future__ import annotations

__all__ = ["JudgeError", "RuntimeFault", "TimeLimitExceeded", "InputExhausted"]


class JudgeError(Exception):
    """Base class for interpreter/judge failures."""


class RuntimeFault(JudgeError):
    """The submission performed an illegal operation (bad index, missing
    function, type misuse...). Maps to Codeforces' RUNTIME_ERROR verdict."""


class TimeLimitExceeded(JudgeError):
    """The submission exceeded the cycle budget (Codeforces' TLE)."""

    def __init__(self, cycles: int):
        self.cycles = cycles
        super().__init__(f"time limit exceeded after {cycles} cycles")


class InputExhausted(RuntimeFault):
    """``cin`` read past the end of the test input."""

"""Runtime value model for the interpreter.

C++ value semantics are emulated on Python objects:

* scalars (``int``, ``double``, ``bool``, ``char``) are immutable Python
  values (char is a 1-character ``str``);
* containers wrap Python structures and are *deep-copied* on assignment
  and by-value parameter passing (:func:`copy_value`), matching C++;
* reference parameters share the same :class:`Cell`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any

from ..lang.cpp_ast import TypeSpec
from .errors import RuntimeFault

__all__ = ["Cell", "VectorVal", "MapVal", "SetVal", "PairVal", "QueueVal",
           "StackVal", "PriorityQueueVal", "IterRef", "default_value",
           "copy_value", "container_size", "deep_element_count",
           "truthy", "NUMERIC_BASES"]

NUMERIC_BASES = {
    "int", "long", "long long", "unsigned", "unsigned long long", "short",
    "size_t", "bool", "double", "float", "long double", "auto",
}


@dataclass
class Cell:
    """A storage location: variable slot or by-ref parameter binding."""

    value: Any
    type: TypeSpec = field(default_factory=TypeSpec)


class VectorVal:
    """``std::vector`` (also backs arrays)."""

    __slots__ = ("items", "elem_type")

    def __init__(self, items: list | None = None,
                 elem_type: TypeSpec | None = None):
        self.items = items if items is not None else []
        self.elem_type = elem_type or TypeSpec(base="int")

    def __len__(self) -> int:
        return len(self.items)

    def at(self, index: int):
        if not 0 <= index < len(self.items):
            raise RuntimeFault(f"vector index {index} out of range "
                               f"[0, {len(self.items)})")
        return self.items[index]

    def set(self, index: int, value) -> None:
        if not 0 <= index < len(self.items):
            raise RuntimeFault(f"vector index {index} out of range "
                               f"[0, {len(self.items)})")
        self.items[index] = value


class MapVal:
    """``std::map`` / ``std::unordered_map`` (ordered flag kept for cost)."""

    __slots__ = ("entries", "key_type", "value_type", "ordered")

    def __init__(self, key_type: TypeSpec | None = None,
                 value_type: TypeSpec | None = None, ordered: bool = True):
        self.entries: dict = {}
        self.key_type = key_type or TypeSpec(base="int")
        self.value_type = value_type or TypeSpec(base="int")
        self.ordered = ordered

    def __len__(self) -> int:
        return len(self.entries)


class SetVal:
    __slots__ = ("items", "elem_type", "ordered", "multi")

    def __init__(self, elem_type: TypeSpec | None = None, ordered: bool = True,
                 multi: bool = False):
        # A multiset needs counts; model both with a count dict.
        self.items: dict = {}
        self.elem_type = elem_type or TypeSpec(base="int")
        self.ordered = ordered
        self.multi = multi

    def __len__(self) -> int:
        return sum(self.items.values()) if self.multi else len(self.items)


class PairVal:
    __slots__ = ("first", "second")

    def __init__(self, first=0, second=0):
        self.first = first
        self.second = second


class QueueVal:
    __slots__ = ("items",)

    def __init__(self):
        from collections import deque

        self.items = deque()

    def __len__(self) -> int:
        return len(self.items)


class StackVal:
    __slots__ = ("items",)

    def __init__(self):
        self.items: list = []

    def __len__(self) -> int:
        return len(self.items)


class PriorityQueueVal:
    """Max-heap by default, like ``std::priority_queue``."""

    __slots__ = ("heap",)

    def __init__(self):
        self.heap: list = []

    def push(self, value) -> None:
        heapq.heappush(self.heap, _Neg(value))

    def pop(self):
        if not self.heap:
            raise RuntimeFault("pop on empty priority_queue")
        return heapq.heappop(self.heap).value

    def top(self):
        if not self.heap:
            raise RuntimeFault("top on empty priority_queue")
        return self.heap[0].value

    def __len__(self) -> int:
        return len(self.heap)


class _Neg:
    """Order-reversing wrapper so heapq (a min-heap) acts as a max-heap."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other) -> bool:
        return other.value < self.value


@dataclass
class IterRef:
    """A ``begin()``/``end()`` style iterator: container + position."""

    container: Any
    position: int
    reversed: bool = False


def default_value(type_spec: TypeSpec):
    """The value a fresh C++ variable of this type holds (globals /
    value-initialized locals; locals of scalar type are zero-initialized
    here, a safe simplification the generators rely on)."""
    base = type_spec.base
    if base in ("double", "float", "long double"):
        return 0.0
    if base in NUMERIC_BASES:
        return 0
    if base == "char":
        return "\0"
    if base == "string":
        return ""
    if base == "vector":
        elem = type_spec.args[0] if type_spec.args else TypeSpec(base="int")
        return VectorVal(elem_type=elem)
    if base in ("map", "unordered_map"):
        key = type_spec.args[0] if type_spec.args else TypeSpec(base="int")
        val = type_spec.args[1] if len(type_spec.args) > 1 else TypeSpec(base="int")
        return MapVal(key_type=key, value_type=val, ordered=(base == "map"))
    if base in ("set", "unordered_set", "multiset"):
        elem = type_spec.args[0] if type_spec.args else TypeSpec(base="int")
        return SetVal(elem_type=elem, ordered=(base != "unordered_set"),
                      multi=(base == "multiset"))
    if base == "pair":
        first = default_value(type_spec.args[0]) if type_spec.args else 0
        second = default_value(type_spec.args[1]) if len(type_spec.args) > 1 else 0
        return PairVal(first, second)
    if base == "queue" or base == "deque":
        return QueueVal()
    if base == "stack":
        return StackVal()
    if base == "priority_queue":
        return PriorityQueueVal()
    if base == "void":
        return None
    raise RuntimeFault(f"cannot default-construct type {type_spec}")


def copy_value(value):
    """Deep copy implementing C++ value semantics for containers."""
    if isinstance(value, VectorVal):
        out = VectorVal(elem_type=value.elem_type)
        out.items = [copy_value(v) for v in value.items]
        return out
    if isinstance(value, MapVal):
        out = MapVal(value.key_type, value.value_type, value.ordered)
        out.entries = {k: copy_value(v) for k, v in value.entries.items()}
        return out
    if isinstance(value, SetVal):
        out = SetVal(value.elem_type, value.ordered, value.multi)
        out.items = dict(value.items)
        return out
    if isinstance(value, PairVal):
        return PairVal(copy_value(value.first), copy_value(value.second))
    if isinstance(value, QueueVal):
        out = QueueVal()
        out.items.extend(copy_value(v) for v in value.items)
        return out
    if isinstance(value, StackVal):
        out = StackVal()
        out.items = [copy_value(v) for v in value.items]
        return out
    if isinstance(value, PriorityQueueVal):
        out = PriorityQueueVal()
        out.heap = list(value.heap)
        return out
    return value  # scalars & strings are immutable


def container_size(value) -> int:
    """Element count of a container (0 for scalars)."""
    if isinstance(value, (VectorVal, MapVal, SetVal, QueueVal, StackVal,
                          PriorityQueueVal)):
        return len(value)
    if isinstance(value, str):
        return len(value)
    return 0


def deep_element_count(value) -> int:
    """Total scalar slots reachable from ``value`` (memory accounting)."""
    if isinstance(value, VectorVal):
        return 1 + sum(deep_element_count(v) for v in value.items)
    if isinstance(value, MapVal):
        return 1 + sum(1 + deep_element_count(v) for v in value.entries.values())
    if isinstance(value, SetVal):
        return 1 + len(value)
    if isinstance(value, PairVal):
        return deep_element_count(value.first) + deep_element_count(value.second)
    if isinstance(value, (QueueVal, StackVal, PriorityQueueVal)):
        return 1 + len(value)
    if isinstance(value, str):
        return 1 + len(value) // 8
    return 1


def truthy(value) -> bool:
    """C++ truthiness of a scalar."""
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return value not in ("", "\0")
    raise RuntimeFault(f"value of type {type(value).__name__} is not a condition")

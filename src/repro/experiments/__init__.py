"""Experiment drivers: one function per table/figure of the paper."""

from .corpus_cache import default_cache_dir, load_mp_corpus, load_table1_corpus
from .drivers import (
    Fig3Result, Fig4Result, Fig5Result, Fig6Result, Fig7Result, HpoResult,
    Table1Result, Table2Result, Table3Result, TrainedProblemModel,
    run_fig3, run_fig4, run_fig5, run_fig6, run_fig7, run_hpo, run_table1,
    run_table2, run_table3, train_problem_model,
)
from .profiles import BENCH, PAPER, QUICK, ScaleProfile

__all__ = [
    "ScaleProfile", "BENCH", "QUICK", "PAPER",
    "default_cache_dir", "load_table1_corpus", "load_mp_corpus",
    "train_problem_model", "TrainedProblemModel",
    "Table1Result", "run_table1",
    "Fig3Result", "run_fig3",
    "Table2Result", "run_table2",
    "Table3Result", "run_table3",
    "Fig4Result", "run_fig4",
    "Fig5Result", "run_fig5",
    "Fig6Result", "run_fig6",
    "Fig7Result", "run_fig7",
    "HpoResult", "run_hpo",
]

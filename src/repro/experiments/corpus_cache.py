"""Build-once corpora for the benchmark harness.

Judging hundreds of submissions through the interpreter takes minutes,
so benchmark corpora are built once per (profile, seed) and persisted
as JSONL next to the repository. Delete the cache directory to force a
rebuild.
"""

from __future__ import annotations

from pathlib import Path

from ..corpus import Collector, SubmissionDatabase, mp_families, table1_families
from ..judge import MachineProfile
from .profiles import ScaleProfile

__all__ = ["default_cache_dir", "load_table1_corpus", "load_mp_corpus"]


def default_cache_dir() -> Path:
    return Path(__file__).resolve().parents[3] / ".corpus_cache"


def _collector(seed: int) -> Collector:
    return Collector(machine=MachineProfile(cycles_per_ms=2000.0, seed=seed),
                     seed=seed)


def load_table1_corpus(profile: ScaleProfile, seed: int = 1278,
                       cache_dir: Path | None = None) -> SubmissionDatabase:
    """The nine Table-I problems, ``submissions_per_problem`` each."""
    cache_dir = cache_dir or default_cache_dir()
    path = cache_dir / (f"table1_{profile.name}_s{seed}"
                        f"_n{profile.submissions_per_problem}.jsonl")
    if path.exists():
        return SubmissionDatabase.load(path)
    families = table1_families(scale=profile.corpus_scale,
                               num_tests=profile.num_tests)
    db = _collector(seed).collect(list(families.values()),
                                  per_problem=profile.submissions_per_problem)
    db.save(path)
    return db


def load_mp_corpus(profile: ScaleProfile, seed: int = 4321,
                   cache_dir: Path | None = None) -> SubmissionDatabase:
    """The MP pool: many problems, a few submissions each."""
    cache_dir = cache_dir or default_cache_dir()
    path = cache_dir / (f"mp_{profile.name}_s{seed}"
                        f"_p{profile.mp_problem_count}"
                        f"_n{profile.mp_submissions_per_problem}.jsonl")
    if path.exists():
        return SubmissionDatabase.load(path)
    families = mp_families(count=profile.mp_problem_count,
                           scale=profile.corpus_scale)
    db = _collector(seed).collect(
        families, per_problem=profile.mp_submissions_per_problem)
    db.save(path)
    return db

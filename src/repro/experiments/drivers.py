"""One driver per table/figure of the paper's evaluation (Section VI).

Every driver takes a :class:`~repro.experiments.profiles.ScaleProfile`
and the cached corpora, runs the experiment at that scale, and returns
a result object with a ``render()`` method that prints the same rows /
series the paper reports. The pytest-benchmark harness calls these
one-to-one; EXPERIMENTS.md records their output against the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..corpus import SubmissionDatabase, TABLE1_COUNTS
from ..core import (
    ExperimentConfig, TrainConfig, Trainer, evaluate_on_pairs, roc_curve,
    run_experiment, sensitivity_curve,
)
from ..corpus.problem import Submission
from ..data import sample_pairs, split_submissions, subset_submissions
from ..engine import train_pairs_model
from ..tuning import Study, TpeLiteSampler, TrialPruningCallback
from ..viz import (
    box_summary, code_embedding_map, line_plot, node_embedding_atlas,
    scatter_plot, table,
)
from .profiles import ScaleProfile

__all__ = [
    "train_problem_model", "TrainedProblemModel",
    "Table1Result", "run_table1",
    "Fig3Result", "run_fig3",
    "Table2Result", "run_table2",
    "Table3Result", "run_table3",
    "Fig4Result", "run_fig4",
    "Fig5Result", "run_fig5",
    "Fig6Result", "run_fig6",
    "Fig7Result", "run_fig7",
    "HpoResult", "run_hpo",
]

#: Paper-reported reference numbers used in the rendered comparisons.
PAPER_TABLE1_MEDIANS = {"A": 1269, "B": 658, "C": 437, "D": 534, "E": 80,
                        "F": 214, "G": 90, "H": 9, "I": 285}


# ---------------------------------------------------------------------------
# shared training helper
# ---------------------------------------------------------------------------
@dataclass
class TrainedProblemModel:
    tag: str
    trainer: Trainer
    train_submissions: list[Submission]
    test_submissions: list[Submission]
    encoder_kind: str


def train_problem_model(submissions: list[Submission], profile: ScaleProfile,
                        encoder_kind: str = "treelstm", num_layers: int = 1,
                        direction: str = "alternating", seed: int = 0,
                        tag: str = "?", epochs: int | None = None,
                        two_way: bool = False) -> TrainedProblemModel:
    """Split -> pair -> train one model; the unit every driver composes.

    A thin profile adapter over :func:`repro.core.run_experiment` (and
    through it the single :mod:`repro.engine` loop): ``eval_pairs=0``
    skips the pipeline's own held-out evaluation because the drivers
    score their models against many pools afterwards.
    """
    config = ExperimentConfig(
        encoder_kind=encoder_kind, embedding_dim=profile.embedding_dim,
        hidden_size=profile.hidden_size, num_layers=num_layers,
        direction=direction, train_fraction=0.75,
        train_pairs=profile.train_pairs, eval_pairs=0, two_way=two_way,
        seed=seed,
        train=TrainConfig(
            epochs=epochs if epochs is not None else profile.epochs,
            batch_size=profile.batch_size,
            learning_rate=profile.learning_rate, seed=seed))
    result = run_experiment(submissions, config)
    return TrainedProblemModel(tag=tag, trainer=result.trainer,
                               train_submissions=result.train_submissions,
                               test_submissions=result.test_submissions,
                               encoder_kind=encoder_kind)


def _eval_on(trained: TrainedProblemModel, submissions: list[Submission],
             count: int, seed: int = 17) -> float:
    rng = np.random.default_rng(seed)
    pairs = sample_pairs(submissions, count, rng)
    return evaluate_on_pairs(trained.trainer, pairs).accuracy


# ---------------------------------------------------------------------------
# Table I — dataset statistics
# ---------------------------------------------------------------------------
@dataclass
class Table1Result:
    rows: list[tuple]          # tag, count, min, median, max, std

    def render(self) -> str:
        header = ["Tag", "Count", "Min(ms)", "Median(ms)", "Max(ms)",
                  "StdDev", "PaperMedian(ms)", "PaperCount"]
        body = [[tag, count, f"{mn:.0f}", f"{med:.0f}", f"{mx:.0f}",
                 f"{sd:.0f}", PAPER_TABLE1_MEDIANS[tag], TABLE1_COUNTS[tag]]
                for tag, count, mn, med, mx, sd in self.rows]
        return table(header, body)


def run_table1(db: SubmissionDatabase) -> Table1Result:
    rows = []
    for stats in db.all_stats():
        rows.append((stats.tag, stats.count, stats.min_ms, stats.median_ms,
                     stats.max_ms, stats.stddev_ms))
    return Table1Result(rows=rows)


# ---------------------------------------------------------------------------
# Figure 3 — tree-LSTM vs GCN, same-problem lines + cross-problem boxes
# ---------------------------------------------------------------------------
@dataclass
class Fig3Result:
    same_problem: dict          # (encoder, tag) -> accuracy (line plots)
    cross_problem: dict         # (encoder, tag) -> list of accuracies (boxes)

    def mean_same(self, encoder: str) -> float:
        vals = [v for (enc, _), v in self.same_problem.items()
                if enc == encoder]
        return float(np.mean(vals))

    def render(self) -> str:
        parts = []
        for encoder in ("treelstm", "gcn"):
            tags = sorted(t for (enc, t) in self.same_problem if enc == encoder)
            accs = [self.same_problem[(encoder, t)] for t in tags]
            parts.append(f"[{encoder}] same-problem accuracy by training set")
            parts.append(table(["tag"] + tags, [["acc"] + [f"{a:.3f}"
                                                           for a in accs]]))
            parts.append(f"[{encoder}] cross-problem accuracy distribution")
            parts.append(box_summary({t: self.cross_problem[(encoder, t)]
                                      for t in tags}))
        parts.append(f"mean same-problem: treelstm="
                     f"{self.mean_same('treelstm'):.3f} "
                     f"gcn={self.mean_same('gcn'):.3f} "
                     f"(paper: tree-LSTM wins everywhere; up to .84/.73)")
        return "\n".join(parts)


def run_fig3(table1_db: SubmissionDatabase, mp_db: SubmissionDatabase,
             profile: ScaleProfile, encoders=("treelstm", "gcn"),
             tags: tuple = ("A", "B", "C", "D", "E", "F", "G", "H", "I"),
             include_mp: bool = True, seed: int = 0) -> Fig3Result:
    same_problem: dict = {}
    cross_problem: dict = {}
    pools = {tag: table1_db.submissions(tag) for tag in tags}
    mp_pool: list[Submission] = []
    if include_mp:
        for tag in mp_db.problems():
            mp_pool.extend(mp_db.submissions(tag))

    for encoder in encoders:
        layers = 6 if encoder == "gcn" else 1   # paper's tuned GCN depth
        for tag in tags:
            trained = train_problem_model(
                pools[tag], profile, encoder_kind=encoder, seed=seed,
                num_layers=layers, tag=tag)
            same_problem[(encoder, tag)] = _eval_on(
                trained, trained.test_submissions, profile.eval_pairs)
            others = []
            for other_tag in tags:
                if other_tag == tag:
                    continue
                others.append(_eval_on(
                    trained, pools[other_tag],
                    max(10, profile.eval_pairs // 3)))
            cross_problem[(encoder, tag)] = others
        if include_mp and mp_pool:
            trained = train_problem_model(mp_pool, profile,
                                          encoder_kind=encoder,
                                          num_layers=layers,
                                          seed=seed, tag="MP")
            same_problem[(encoder, "MP")] = _eval_on(
                trained, trained.test_submissions, profile.eval_pairs)
            cross_problem[(encoder, "MP")] = [
                _eval_on(trained, pools[t], max(10, profile.eval_pairs // 3))
                for t in tags]
    return Fig3Result(same_problem=same_problem, cross_problem=cross_problem)


# ---------------------------------------------------------------------------
# Table II — cross-problem matrix for the DFS/graph group (F, G, I)
# ---------------------------------------------------------------------------
@dataclass
class Table2Result:
    matrix: dict                # (train_tag, test_tag) -> accuracy
    tags: tuple = ("F", "G", "I")

    def render(self) -> str:
        header = ["train\\test"] + list(self.tags)
        body = [[row] + [f"{self.matrix[(row, col)]:.2f}"
                         for col in self.tags] for row in self.tags]
        note = ("paper Table II: F/G (same algorithmic class) transfer "
                "better than partial-overlap I")
        return table(header, body) + "\n" + note

    def within_group_mean(self) -> float:
        cells = [self.matrix[(a, b)] for a in ("F", "G") for b in ("F", "G")]
        return float(np.mean(cells))

    def partial_overlap_mean(self) -> float:
        cells = [self.matrix[(a, "I")] for a in ("F", "G")] + \
            [self.matrix[("I", b)] for b in ("F", "G")]
        return float(np.mean(cells))


def run_table2(table1_db: SubmissionDatabase, profile: ScaleProfile,
               seed: int = 0) -> Table2Result:
    tags = ("F", "G", "I")
    matrix = {}
    for train_tag in tags:
        trained = train_problem_model(table1_db.submissions(train_tag),
                                      profile, seed=seed, tag=train_tag)
        for test_tag in tags:
            if test_tag == train_tag:
                pool = trained.test_submissions
            else:
                pool = table1_db.submissions(test_tag)
            matrix[(train_tag, test_tag)] = _eval_on(
                trained, pool, profile.eval_pairs)
    return Table2Result(matrix=matrix)


# ---------------------------------------------------------------------------
# Table III — layers x {uni, bi, alternating} on problems A and C
# ---------------------------------------------------------------------------
@dataclass
class Table3Result:
    accuracies: dict            # (problem, direction, layers) -> accuracy

    def render(self) -> str:
        rows = []
        for (problem, direction, layers), acc in sorted(self.accuracies.items()):
            rows.append([problem, direction, layers, f"{acc:.3f}"])
        note = ("paper Table III: accuracy is flat in depth; alternating "
                "matches bi-directional at half the parameters")
        return table(["problem", "direction", "layers", "accuracy"], rows) \
            + "\n" + note


def run_table3(table1_db: SubmissionDatabase, profile: ScaleProfile,
               problems: tuple = ("A", "C"),
               layer_counts: tuple = (1, 2, 3),
               seed: int = 0) -> Table3Result:
    accuracies = {}
    for problem in problems:
        subs = table1_db.submissions(problem)
        for direction in ("uni", "bi"):
            for layers in layer_counts:
                trained = train_problem_model(
                    subs, profile, direction=direction, num_layers=layers,
                    seed=seed, tag=problem)
                accuracies[(problem, direction, layers)] = _eval_on(
                    trained, trained.test_submissions, profile.eval_pairs)
        trained = train_problem_model(subs, profile, direction="alternating",
                                      num_layers=3, seed=seed, tag=problem)
        accuracies[(problem, "alternating", 3)] = _eval_on(
            trained, trained.test_submissions, profile.eval_pairs)
    return Table3Result(accuracies=accuracies)


# ---------------------------------------------------------------------------
# Figure 4 — ROC of the multi-layer alternating tree-LSTM on problem A
# ---------------------------------------------------------------------------
@dataclass
class Fig4Result:
    fpr: np.ndarray
    tpr: np.ndarray
    auc: float

    def render(self) -> str:
        plot = line_plot(self.fpr, self.tpr, title="Fig.4 ROC (problem A)",
                         x_label="FPR", y_label="TPR")
        return f"{plot}\nAUC = {self.auc:.3f} (paper: 0.85)"


def run_fig4(table1_db: SubmissionDatabase, profile: ScaleProfile,
             tag: str = "A", seed: int = 0) -> Fig4Result:
    trained = train_problem_model(table1_db.submissions(tag), profile,
                                  direction="alternating", num_layers=3,
                                  seed=seed, tag=tag)
    rng = np.random.default_rng(seed + 1)
    pairs = sample_pairs(trained.test_submissions, profile.eval_pairs, rng)
    probs = trained.trainer.predict_probabilities(pairs)
    labels = np.array([p.label for p in pairs])
    curve = roc_curve(labels, probs)
    return Fig4Result(fpr=curve.fpr, tpr=curve.tpr, auc=curve.auc)


# ---------------------------------------------------------------------------
# Figure 5 — data sampling and augmentation ablations
# ---------------------------------------------------------------------------
@dataclass
class Fig5Result:
    submissions_curve: list     # (n_submissions, accuracy)
    pair_fraction_curve: list   # (fraction, accuracy)
    one_way_accuracy: float
    two_way_accuracy: float

    def render(self) -> str:
        a = line_plot([n for n, _ in self.submissions_curve],
                      [acc for _, acc in self.submissions_curve],
                      title="Fig.5a accuracy vs training submissions",
                      x_label="#submissions", y_label="accuracy")
        b = line_plot([f for f, _ in self.pair_fraction_curve],
                      [acc for _, acc in self.pair_fraction_curve],
                      title="Fig.5b accuracy vs pair fraction",
                      x_label="fraction of pairs", y_label="accuracy")
        c = (f"ordering ablation: one-way={self.one_way_accuracy:.3f} "
             f"two-way={self.two_way_accuracy:.3f} "
             f"(paper: two-way helps by up to ~2%)")
        return "\n".join([a, b, c])


def run_fig5(table1_db: SubmissionDatabase, profile: ScaleProfile,
             tag: str = "A", submission_sizes: tuple = (8, 12, 18, 27),
             fractions: tuple = (0.1, 0.25, 0.5, 0.75, 1.0),
             seed: int = 0) -> Fig5Result:
    subs = table1_db.submissions(tag)
    rng = np.random.default_rng(seed)
    train_pool, test_pool = split_submissions(subs, 0.75, rng)
    test_pairs = sample_pairs(test_pool, profile.eval_pairs, rng)

    def train_eval(train_subs, n_pairs, two_way=False, run_seed=0):
        # One engine call per ablation point: sample, train, score.
        local_rng = np.random.default_rng(run_seed)
        pairs = sample_pairs(train_subs, n_pairs, local_rng, two_way=two_way)
        run = train_pairs_model(
            pairs, embedding_dim=profile.embedding_dim,
            hidden_size=profile.hidden_size, seed=run_seed,
            train=TrainConfig(
                epochs=profile.epochs, batch_size=profile.batch_size,
                learning_rate=profile.learning_rate, seed=run_seed))
        return evaluate_on_pairs(run.engine, test_pairs).accuracy

    submissions_curve = []
    for size in submission_sizes:
        size = min(size, len(train_pool))
        chosen = subset_submissions(train_pool, size,
                                    np.random.default_rng(seed + size))
        n_pairs = max(4, int(0.75 * size * (size - 1)))
        n_pairs = min(n_pairs, profile.train_pairs)
        submissions_curve.append((size, train_eval(chosen, n_pairs,
                                                   run_seed=seed + size)))

    fixed = subset_submissions(train_pool, min(20, len(train_pool)),
                               np.random.default_rng(seed + 99))
    total_pairs = len(fixed) * (len(fixed) - 1)
    pair_fraction_curve = []
    for fraction in fractions:
        n_pairs = max(4, int(fraction * total_pairs))
        n_pairs = min(n_pairs, profile.train_pairs * 2)
        pair_fraction_curve.append(
            (fraction, train_eval(fixed, n_pairs,
                                  run_seed=seed + int(fraction * 100))))

    budget = min(profile.train_pairs, total_pairs)
    one_way = train_eval(fixed, budget, two_way=False, run_seed=seed + 7)
    two_way = train_eval(fixed, budget, two_way=True, run_seed=seed + 7)
    return Fig5Result(submissions_curve=submissions_curve,
                      pair_fraction_curve=pair_fraction_curve,
                      one_way_accuracy=one_way, two_way_accuracy=two_way)


# ---------------------------------------------------------------------------
# Figure 6 — prediction sensitivity to the minimum runtime gap
# ---------------------------------------------------------------------------
@dataclass
class Fig6Result:
    curves: dict                # tag -> list of (threshold, accuracy, n)

    def render(self) -> str:
        parts = []
        for tag, curve in sorted(self.curves.items()):
            xs = [t for t, acc, n in curve if n > 0]
            ys = [acc for t, acc, n in curve if n > 0]
            parts.append(line_plot(
                xs, ys, title=f"Fig.6 sensitivity (problem {tag})",
                x_label="min runtime gap (ms)", y_label="accuracy"))
        parts.append("paper: accuracy rises monotonically with the gap, "
                     "nearing 1.0 for large gaps")
        return "\n".join(parts)


def run_fig6(table1_db: SubmissionDatabase, profile: ScaleProfile,
             tags: tuple = ("A", "B", "C"), seed: int = 0) -> Fig6Result:
    curves = {}
    for tag in tags:
        trained = train_problem_model(table1_db.submissions(tag), profile,
                                      seed=seed, tag=tag)
        rng = np.random.default_rng(seed + 5)
        pairs = sample_pairs(trained.test_submissions,
                             profile.eval_pairs, rng)
        gaps = sorted(p.gap_ms for p in pairs)
        thresholds = [0.0] + [float(np.percentile(gaps, q))
                              for q in (25, 50, 75, 90)]
        curves[tag] = sensitivity_curve(trained.trainer, pairs, thresholds)
    return Fig6Result(curves=curves)


# ---------------------------------------------------------------------------
# Figure 7 — t-SNE of node and code embeddings
# ---------------------------------------------------------------------------
@dataclass
class Fig7Result:
    node_points: np.ndarray
    node_categories: list
    code_points: np.ndarray
    code_labels: list
    node_silhouette: float      # crude cluster-quality score
    code_silhouette: float

    def render(self) -> str:
        a = scatter_plot(self.node_points, self.node_categories,
                         title="Fig.7a node embeddings (by category)")
        b = scatter_plot(self.code_points, self.code_labels,
                         title="Fig.7b code embeddings (by problem)")
        return (f"{a}\n{b}\nnode-category separation={self.node_silhouette:.3f} "
                f"problem separation={self.code_silhouette:.3f} "
                f"(higher = tighter clusters)")


def _separation(points: np.ndarray, labels: list) -> float:
    """Mean between-centroid distance / mean within-group spread."""
    groups = {}
    for point, label in zip(points, labels):
        groups.setdefault(label, []).append(point)
    centroids = {k: np.mean(v, axis=0) for k, v in groups.items()
                 if len(v) >= 2}
    if len(centroids) < 2:
        return 0.0
    within = np.mean([np.linalg.norm(np.asarray(v) - centroids[k], axis=1).mean()
                      for k, v in groups.items() if k in centroids])
    keys = list(centroids)
    between = np.mean([np.linalg.norm(centroids[a] - centroids[b])
                       for idx, a in enumerate(keys) for b in keys[idx + 1:]])
    return float(between / max(within, 1e-9))


def run_fig7(table1_db: SubmissionDatabase, profile: ScaleProfile,
             tags: tuple = ("A", "F", "H"), seed: int = 0) -> Fig7Result:
    pool = []
    for tag in tags:
        pool.extend(table1_db.submissions(tag))
    trained = train_problem_model(pool, profile, seed=seed, tag="+".join(tags))
    model = trained.trainer.model

    atlas = node_embedding_atlas(model, n_iter=250, seed=seed)
    groups = {tag: table1_db.submissions(tag)[:12] for tag in tags}
    code_points, code_labels = code_embedding_map(model, groups,
                                                  n_iter=250, seed=seed)
    return Fig7Result(
        node_points=atlas.points, node_categories=atlas.categories,
        code_points=code_points, code_labels=code_labels,
        node_silhouette=_separation(atlas.points, atlas.categories),
        code_silhouette=_separation(code_points, code_labels),
    )


# ---------------------------------------------------------------------------
# Section V-C — hyper-parameter tuning (Optuna stand-in)
# ---------------------------------------------------------------------------
@dataclass
class HpoResult:
    best_gcn_accuracy: float
    best_gcn_params: dict
    treelstm_accuracy: float
    trials: int

    def render(self) -> str:
        return (f"HPO: best GCN acc={self.best_gcn_accuracy:.3f} with "
                f"{self.best_gcn_params}; tree-LSTM acc="
                f"{self.treelstm_accuracy:.3f} "
                f"(paper: GCN best 68.5% < tree-LSTM 73%)")


def run_hpo(table1_db: SubmissionDatabase, profile: ScaleProfile,
            tag: str = "C", n_trials: int = 6, seed: int = 0,
            pruner=None) -> HpoResult:
    """Section V-C hyper-parameter search, every trial through the engine.

    With a ``pruner`` (e.g. :class:`repro.tuning.MedianPruner`), each
    trial trains with validation enabled and a
    :class:`~repro.tuning.TrialPruningCallback` that reports per-epoch
    accuracy and abandons runs the pruner rejects; ``None`` (default)
    keeps the exhaustive behaviour the checked-in benchmark numbers
    were recorded with.
    """
    subs = table1_db.submissions(tag)
    rng = np.random.default_rng(seed)
    train_subs, test_subs = split_submissions(subs, 0.75, rng)
    train_pairs = sample_pairs(train_subs, profile.train_pairs, rng)
    test_pairs = sample_pairs(test_subs, profile.eval_pairs, rng)

    def objective(trial):
        layers = trial.suggest_int("layers", 1, 8)
        hidden = trial.suggest_int("hidden", 8, 32)
        run = train_pairs_model(
            train_pairs, encoder_kind="gcn",
            embedding_dim=profile.embedding_dim, hidden_size=hidden,
            num_layers=layers, seed=seed,
            val_pairs=test_pairs if pruner is not None else None,
            callbacks=([TrialPruningCallback(trial)]
                       if pruner is not None else ()),
            train=TrainConfig(
                epochs=max(2, profile.epochs // 2),
                batch_size=profile.batch_size,
                learning_rate=profile.learning_rate, seed=seed))
        return evaluate_on_pairs(run.engine, test_pairs).accuracy

    study = Study(direction="maximize", sampler=TpeLiteSampler(seed=seed),
                  pruner=pruner)
    study.optimize(objective, n_trials=n_trials)

    trained = train_problem_model(subs, profile, seed=seed, tag=tag)
    tree_acc = _eval_on(trained, trained.test_submissions, profile.eval_pairs)
    return HpoResult(best_gcn_accuracy=study.best_value,
                     best_gcn_params=study.best_params,
                     treelstm_accuracy=tree_acc, trials=n_trials)

"""Scale profiles for the experiment drivers.

The paper trains on a P100 GPU with thousands of submissions; the
pure-numpy stack reproduces every experiment at configurable scale.
``BENCH`` is sized so the full harness finishes in minutes on a laptop
CPU; ``PAPER`` records the publication-scale settings (Section V-C) for
anyone with patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ScaleProfile", "BENCH", "QUICK", "PAPER"]


@dataclass(frozen=True)
class ScaleProfile:
    name: str
    corpus_scale: float          # workload multiplier for problem families
    submissions_per_problem: int
    mp_problem_count: int
    mp_submissions_per_problem: int
    embedding_dim: int
    hidden_size: int
    epochs: int
    train_pairs: int
    eval_pairs: int
    batch_size: int = 16
    learning_rate: float = 8e-3
    num_tests: int = 3

    def __post_init__(self):
        if self.corpus_scale <= 0:
            raise ValueError("corpus_scale must be positive")
        if min(self.submissions_per_problem, self.mp_problem_count,
               self.embedding_dim, self.hidden_size, self.epochs,
               self.train_pairs, self.eval_pairs) < 1:
            raise ValueError("profile sizes must all be >= 1")

    def smaller(self, **overrides) -> "ScaleProfile":
        return replace(self, **overrides)


#: Used by the pytest-benchmark harness.
BENCH = ScaleProfile(
    name="bench", corpus_scale=0.4, submissions_per_problem=36,
    mp_problem_count=24, mp_submissions_per_problem=4,
    embedding_dim=16, hidden_size=16, epochs=6,
    train_pairs=80, eval_pairs=60,
)

#: Used by tests and examples that just need the moving parts to move.
QUICK = ScaleProfile(
    name="quick", corpus_scale=0.3, submissions_per_problem=14,
    mp_problem_count=6, mp_submissions_per_problem=3,
    embedding_dim=12, hidden_size=12, epochs=4,
    train_pairs=40, eval_pairs=30,
)

#: The paper's configuration (Section V-C), for reference/long runs.
PAPER = ScaleProfile(
    name="paper", corpus_scale=4.0, submissions_per_problem=4096,
    mp_problem_count=100, mp_submissions_per_problem=100,
    embedding_dim=120, hidden_size=100, epochs=60,
    train_pairs=3_000_000, eval_pairs=50_000,
)

"""Smoke test for the dead-mutant robustness workload.

Runs the full pipeline — generate programs, insert liveness-proven
dead code, judge-verify equivalence, score every encoder kind — at
tiny settings with untrained seeded models, so it stays in the CI
benchmark smoke pass (not marked slow). The trained, full-scale run is
``python benchmarks/robustness_mutants.py --out ...``.
"""

import json

import pytest

from repro.core import ENCODER_KINDS

from .robustness_mutants import (
    WorkloadError, build_mutant_pairs, main, measure_encoder, run_workload,
)

TINY = dict(tags=("C",), per_tag=1, mutants_per_program=2,
            inputs_per_problem=8)


@pytest.fixture(scope="module")
def report():
    return run_workload(**TINY)


class TestWorkloadReport:
    def test_every_encoder_kind_reported(self, report):
        assert set(report["per_encoder"]) == set(ENCODER_KINDS)

    def test_pair_counts_and_kinds_consistent(self, report):
        assert report["pairs"] >= 2
        assert sum(report["mutation_kinds"].values()) == report["pairs"]
        for metrics in report["per_encoder"].values():
            assert metrics["pairs"] == report["pairs"]

    def test_metrics_are_well_formed(self, report):
        for kind, metrics in report["per_encoder"].items():
            assert 0.0 <= metrics["flag_rate"] <= 1.0, kind
            assert 0.0 <= metrics["mean_abs_shift"] <= 0.5, kind
            assert metrics["mean_abs_shift"] <= metrics["max_abs_shift"]
            assert metrics["mean_embedding_drift"] >= 0.0, kind
            assert -1.0 <= metrics["mean_cosine"] <= 1.0 + 1e-9, kind

    def test_report_is_json_serializable(self, report):
        assert json.loads(json.dumps(report)) == report

    def test_deterministic_given_seed(self, report):
        again = run_workload(**TINY)
        assert again == report


class TestEquivalenceLegs:
    def test_pairs_carry_both_proof_legs(self):
        pairs = build_mutant_pairs(**TINY)
        assert pairs
        for original, mutant, meta in pairs:
            assert mutant != original
            assert meta["inputs_run"] >= TINY["inputs_per_problem"]
            assert meta["kind"] in ("dead_store", "dead_decl", "dead_branch")

    def test_semantic_divergence_is_refused(self, monkeypatch):
        # Weaken the dynamic leg's verdict source and the workload must
        # refuse to produce pairs rather than score a live mutant.
        from benchmarks import robustness_mutants as rm

        class Diverged:
            equivalent = False
            failures = (("<input>", "stdout mismatch"),)
            inputs_run = 8

        monkeypatch.setattr(rm, "differential_check",
                            lambda *a, **k: Diverged())
        with pytest.raises(WorkloadError, match="diverged"):
            rm.build_mutant_pairs(**TINY)


class TestCli:
    def test_writes_json_artifact(self, tmp_path, capsys):
        out = tmp_path / "robustness.json"
        assert main(["--tags", "C", "--per-tag", "1", "--mutants", "2",
                     "--inputs", "8", "--out", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["workload"] == "dead_code_mutants"
        assert set(payload["per_encoder"]) == set(ENCODER_KINDS)


def test_measure_encoder_rejects_nothing_silently():
    # measure_encoder on an empty pair list would report NaNs; the
    # workload builds pairs first, so guard the contract explicitly.
    with pytest.raises(ValueError):
        measure_encoder("lstm", [])

"""Synthetic benchmark program + structurally distinct variants.

Shared by ``test_perf_microbench.py`` and ``test_perf_serve.py`` so the
replace-target line and the distinctness guarantees live in exactly one
place (the pre-PR4 copy of this logic silently produced byte-identical
"variants" because the replaced line did not exist).
"""

SOURCE = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<int> v(n, 0);
    for (int i = 0; i < n; i++) cin >> v[i];
    sort(v.begin(), v.end());
    long long s = 0;
    for (int i = 0; i < n; i++) s += (long long)(v[i]) * i;
    cout << s << endl;
    return 0;
}
"""

LOOP_LINE = "    for (int i = 0; i < n; i++) s += (long long)(v[i]) * i;\n"


def variants(n: int) -> list[str]:
    """``n`` structurally distinct versions of :data:`SOURCE`.

    Variant k appends k extra statements, so node counts — and hence
    canonical AST keys — all differ (literal-only edits would not: the
    serving cache's canonical hash ignores literal values by design).
    """
    assert LOOP_LINE in SOURCE, "benchmark source drifted from LOOP_LINE"
    out = [SOURCE.replace(LOOP_LINE,
                          LOOP_LINE + "    s += n;\n" * k)
           for k in range(1, n + 1)]
    assert len(set(out)) == n
    return out

"""Micro-benchmarks of the pipeline's hot paths (throughput numbers).

Not a paper artifact — these quantify the substrate itself: frontend
parsing, featurization, one tree-LSTM encode, one training step, and
one judged execution. Useful for tracking performance regressions in
the reproduction.
"""

import numpy as np
import pytest

from repro.core import TrainConfig, Trainer, build_model
from repro.data import sample_pairs
from repro.judge import Judge, MachineProfile
from repro.lang import parse

SOURCE = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<int> v(n, 0);
    for (int i = 0; i < n; i++) cin >> v[i];
    sort(v.begin(), v.end());
    long long s = 0;
    for (int i = 0; i < n; i++) s += (long long)(v[i]) * i;
    cout << s << endl;
    return 0;
}
"""


def test_bench_parse(benchmark):
    unit = benchmark(parse, SOURCE)
    assert unit.functions


def test_bench_featurize(benchmark):
    from repro.core import TreeFeaturizer

    featurizer = TreeFeaturizer(cache_size=0)  # disable caching entirely

    def featurize():
        return featurizer(SOURCE)

    feats = benchmark(featurize)
    assert feats.num_nodes > 20


def test_bench_treelstm_encode(benchmark):
    model = build_model(embedding_dim=16, hidden_size=16)
    feats = model.featurizer(SOURCE)

    def encode():
        return model.encoder(feats)

    z = benchmark(encode)
    assert z.shape == (16,)


def test_bench_training_step(benchmark, table1_db):
    subs = table1_db.submissions("C")
    pairs = sample_pairs(subs, 8, np.random.default_rng(0))
    model = build_model(embedding_dim=16, hidden_size=16)
    trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8))
    prepared = trainer._featurize_pairs(pairs)

    def step():
        trainer.optimizer.zero_grad()
        loss = trainer._batch_loss(prepared)
        loss.backward()
        trainer.optimizer.step()
        return loss

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.isfinite(loss.item())


def test_bench_judge_execution(benchmark):
    judge = Judge(machine=MachineProfile(cycles_per_ms=2000.0))
    from repro.judge import TestCase as JudgeTest

    n = 200
    values = list(range(n, 0, -1))
    expected = str(sum(v * i for i, v in enumerate(sorted(values))))
    test = JudgeTest(f"{n}\n" + " ".join(map(str, values)), expected)

    report = benchmark.pedantic(
        lambda: judge.judge_source(SOURCE, [test]), rounds=3, iterations=1)
    assert report.verdict.value == "OK"

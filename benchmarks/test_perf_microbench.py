"""Micro-benchmarks of the pipeline's hot paths (throughput numbers).

Not a paper artifact — these quantify the substrate itself: frontend
parsing, featurization, one tree-LSTM encode, one training step, and
one judged execution. Useful for tracking performance regressions in
the reproduction.
"""

import numpy as np
import pytest

from benchmarks.synthetic import SOURCE, variants
from repro.core import TrainConfig, Trainer, build_model
from repro.data import sample_pairs
from repro.judge import Judge, MachineProfile
from repro.lang import parse


def test_bench_parse(benchmark):
    unit = benchmark(parse, SOURCE)
    assert unit.functions


def test_bench_featurize(benchmark):
    from repro.core import TreeFeaturizer

    featurizer = TreeFeaturizer(cache_size=0)  # disable caching entirely

    def featurize():
        return featurizer(SOURCE)

    feats = benchmark(featurize)
    assert feats.num_nodes > 20


def test_bench_treelstm_encode(benchmark):
    model = build_model(embedding_dim=16, hidden_size=16)
    feats = model.featurizer(SOURCE)

    def encode():
        return model.encoder(feats)

    z = benchmark(encode)
    assert z.shape == (16,)


def test_bench_training_step(benchmark, table1_db):
    subs = table1_db.submissions("C")
    pairs = sample_pairs(subs, 8, np.random.default_rng(0))
    model = build_model(embedding_dim=16, hidden_size=16)
    trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8))
    prepared = trainer._featurize_pairs(pairs)

    def step():
        trainer.optimizer.zero_grad()
        loss = trainer._batch_loss(prepared)
        loss.backward()
        trainer.optimizer.step()
        return loss

    # 5 warm-up rounds: the grad-buffer pool and allocator arenas take
    # ~4 steps to reach steady state (step 1 runs ~3x slower), and a
    # real epoch is hundreds of steady-state steps — that is the
    # number this benchmark tracks.
    loss = benchmark.pedantic(step, rounds=5, iterations=1,
                              warmup_rounds=5)
    assert np.isfinite(loss.item())


def test_bench_forest_encode(benchmark):
    """Pairs/sec of the fused forward path at batch 16 (32 trees per
    call, one forest). No corpus needed: 16 structurally distinct pairs
    are built by varying the synthetic source. (The pre-PR4 version of
    this benchmark replaced a line that did not exist, so every
    "variant" was byte-identical to SOURCE; variant trees are slightly
    bigger now, which makes this metric conservative vs BENCH_PR1.)"""
    model = build_model(embedding_dim=16, hidden_size=16)
    feats = [(model.featurizer(SOURCE), model.featurizer(v))
             for v in variants(16)]

    def encode_batch():
        return model.pair_logits(feats)

    logits = benchmark(encode_batch)
    assert logits.shape == (16,)
    try:
        benchmark.extra_info["pairs_per_sec"] = 16.0 / benchmark.stats.stats.mean
    except (AttributeError, TypeError):  # stats API varies across versions
        pass


def test_bench_full_epoch(benchmark, table1_db):
    """One full training epoch (featurization excluded): 24 pairs at
    batch 8, i.e. three fused forest steps per round."""
    subs = table1_db.submissions("C")
    pairs = sample_pairs(subs, 24, np.random.default_rng(1))
    model = build_model(embedding_dim=16, hidden_size=16)
    trainer = Trainer(model, TrainConfig(epochs=1, batch_size=8, seed=0))
    trainer._featurize_pairs(pairs)  # warm the featurizer cache

    def epoch():
        return trainer.fit(pairs)

    history = benchmark.pedantic(epoch, rounds=3, iterations=1,
                                 warmup_rounds=1)
    assert len(history.losses) == 1
    assert np.isfinite(history.losses[0])


def test_bench_segment_sum_fused(benchmark):
    """The fused per-level child aggregation of the forest encode: h~ and
    sum(f*c) bucketed in ONE segment sweep (forward + backward), at a
    realistic deep-forest level size (3k edges -> 1.2k parents, h=16)."""
    from repro.nn.tensor import Tensor
    from repro.nn.treelstm import _segment_sum_pair

    rng = np.random.default_rng(0)
    edges, parents, hidden = 3000, 1200, 16
    seg = np.sort(rng.integers(0, parents, edges)).astype(np.int64)
    h_children = Tensor(rng.standard_normal((edges, hidden)),
                        requires_grad=True)
    fc_children = Tensor(rng.standard_normal((edges, hidden)),
                         requires_grad=True)

    def level_aggregate():
        h_children.zero_grad()
        fc_children.zero_grad()
        h_tilde, fc = _segment_sum_pair(h_children, fc_children, seg,
                                        parents)
        (h_tilde.sum() + fc.sum()).backward()
        return h_tilde

    h_tilde = benchmark(level_aggregate)
    assert h_tilde.shape == (parents, hidden)
    assert h_children.grad is not None


def test_bench_judge_execution(benchmark):
    judge = Judge(machine=MachineProfile(cycles_per_ms=2000.0))
    from repro.judge import TestCase as JudgeTest

    n = 200
    values = list(range(n, 0, -1))
    expected = str(sum(v * i for i, v in enumerate(sorted(values))))
    test = JudgeTest(f"{n}\n" + " ".join(map(str, values)), expected)

    report = benchmark.pedantic(
        lambda: judge.judge_source(SOURCE, [test]), rounds=3, iterations=1,
        warmup_rounds=1)
    assert report.verdict.value == "OK"

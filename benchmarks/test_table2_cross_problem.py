"""Table II — cross-problem transfer within the DFS/graph group.

Models trained on F, G, I and evaluated on each other. Shape to hold:
F<->G (identical algorithm classes: DFS/Graphs/Trees) transfer at
least as well as transfer to/from I (partial overlap: DFS/DP/Graphs),
and the diagonal stays strong.
"""

import numpy as np

import pytest

from repro.experiments import run_table2

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_table2_dfs_group_matrix(benchmark, table1_db, profile, results_dir):
    result = benchmark.pedantic(run_table2, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "table2", result.render())

    diag = [result.matrix[(t, t)] for t in ("F", "G", "I")]
    assert float(np.mean(diag)) > 0.6, "diagonal (same problem) too weak"
    # Paper: larger class overlap -> higher transfer accuracy.
    assert result.within_group_mean() >= result.partial_overlap_mean() - 0.05

"""Table I — dataset statistics per problem tag.

Regenerates the count / min / median / max / stddev columns from the
simulated corpus and prints them beside the paper's values. The shape
to verify: tag H is tiny, A/B/D are large, and every tag shows enough
runtime variance to learn from.
"""

import pytest

from repro.experiments import run_table1

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_table1_dataset_statistics(benchmark, table1_db, results_dir):
    result = benchmark.pedantic(run_table1, args=(table1_db,),
                                rounds=1, iterations=1)
    write_result(results_dir, "table1", result.render())

    rows = {tag: (mn, med, mx, sd) for tag, _, mn, med, mx, sd in result.rows}
    assert set(rows) == set("ABCDEFGHI")
    # Shape check 1: H (DP, tiny in the paper: 2..29 ms) is the smallest.
    medians = {tag: med for tag, (mn, med, mx, sd) in rows.items()}
    assert medians["H"] <= min(medians["A"], medians["B"], medians["D"])
    # Shape check 2: every problem shows meaningful runtime spread.
    for tag, (mn, med, mx, sd) in rows.items():
        assert mx > 1.5 * mn, f"tag {tag} has too little runtime variation"

"""Benchmark fixtures: cached corpora and the bench scale profile.

Every benchmark regenerates one table or figure of the paper via the
drivers in :mod:`repro.experiments`. The corpora are built once (a few
minutes of interpreter time) and cached under ``.corpus_cache/`` at the
repository root; subsequent runs reload in milliseconds.

Rendered outputs are written to ``benchmarks/results/`` so the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from a
single run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import BENCH, load_mp_corpus, load_table1_corpus

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return BENCH


@pytest.fixture(scope="session")
def table1_db(profile):
    return load_table1_corpus(profile)


@pytest.fixture(scope="session")
def mp_db(profile):
    return load_mp_corpus(profile)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_result(results_dir: Path, name: str, rendered: str) -> None:
    (results_dir / f"{name}.txt").write_text(rendered + "\n")
    print(f"\n{rendered}\n")

"""Table III — architectural choices for the tree-LSTM.

1-3 layers x {uni-, bi-directional} plus the 3-layer alternating stack
on problems A and C. Shapes to hold (paper Section VI-C): accuracy is
roughly flat in layer count, and the alternating architecture is
competitive with bi-directional (the paper reports it best-or-equal,
at half the parameters).
"""

import numpy as np

import pytest

from repro.experiments import run_table3

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_table3_architectural_choices(benchmark, table1_db, profile,
                                      results_dir):
    result = benchmark.pedantic(run_table3, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "table3", result.render())

    acc = result.accuracies
    for problem in ("A", "C"):
        uni = [acc[(problem, "uni", layers)] for layers in (1, 2, 3)]
        bi = [acc[(problem, "bi", layers)] for layers in (1, 2, 3)]
        alternating = acc[(problem, "alternating", 3)]
        # Everything beats chance.
        assert min(uni + bi + [alternating]) > 0.5
        # Depth changes accuracy only mildly (paper: "insignificant").
        assert max(uni) - min(uni) < 0.25
        # Alternating stays within run-to-run noise of the uni/bi average
        # (the paper reports it best-or-equal; at bench scale single runs
        # fluctuate by ~0.1).
        assert alternating > float(np.mean(uni + bi)) - 0.10

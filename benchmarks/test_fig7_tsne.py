"""Figure 7 — t-SNE of the learned representations.

(a) node-type embeddings coloured by syntactic category; (b) code
embeddings of submissions from three problems coloured by problem.
Shape to hold: problems form distinguishable clusters in (b) — the
separation score (between-centroid distance over within-group spread)
must exceed 1, and the projections must be finite and 2-D.
"""

import numpy as np
import pytest

from repro.experiments import run_fig7

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_fig7_embedding_projections(benchmark, table1_db, profile,
                                    results_dir):
    result = benchmark.pedantic(run_fig7, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig7", result.render())

    assert result.node_points.shape[1] == 2
    assert result.code_points.shape[1] == 2
    assert np.all(np.isfinite(result.node_points))
    assert np.all(np.isfinite(result.code_points))
    assert len(set(result.code_labels)) == 3
    # Problems separate in code-embedding space (paper: "distinctly
    # different representations").
    assert result.code_silhouette > 1.0

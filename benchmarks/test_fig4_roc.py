"""Figure 4 — ROC curve of the 3-layer alternating tree-LSTM on A.

Shape to hold: the curve dominates the diagonal (AUC well above 0.5;
the paper reports 0.85), and raising the confidence threshold lowers
the false-positive rate — the trade-off Section VI-B recommends to
developers.
"""

import numpy as np

import pytest

from repro.experiments import run_fig4

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_fig4_roc_alternating_treelstm(benchmark, table1_db, profile,
                                       results_dir):
    result = benchmark.pedantic(run_fig4, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig4", result.render())

    assert result.auc > 0.6, f"AUC {result.auc:.3f} barely beats chance"
    # ROC monotonicity (threshold semantics).
    assert np.all(np.diff(result.fpr) >= 0)
    assert np.all(np.diff(result.tpr) >= 0)
    # The curve dominates the diagonal on average.
    assert float(np.mean(result.tpr - result.fpr)) > 0.05

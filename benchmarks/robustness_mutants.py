"""Robustness workload #1: provably-dead mutants vs every encoder kind.

ROADMAP item 4 asks how stable the comparative model is under
*semantics-preserving* program perturbations. Dead-code-insertion
mutants from :mod:`repro.lang.analysis.mutate` are the strongest
possible version of that question: every mutant is (a) liveness-proven
dead by construction and (b) judge-verified byte-equivalent to its
original on seeded inputs — so any change in the model's output is
pure representational sensitivity, not a real performance signal.

For each encoder kind the workload reports, over all
(original, mutant) pairs:

``mean_abs_shift`` / ``max_abs_shift``
    |P(mutant slower than original) - 0.5|: an ideal model says 0.5
    (the programs are equivalent).
``flag_rate``
    fraction of pairs a :class:`~repro.core.PerformanceGate`-style
    threshold would flag as regressions — false alarms by construction.
``mean_embedding_drift``
    relative L2 drift of the latent code vector.
``mean_cosine``
    cosine similarity between original and mutant embeddings.

Run as a script to write the JSON artifact::

    PYTHONPATH=src python benchmarks/robustness_mutants.py --out ROBUST.json
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

import numpy as np

from repro.core import ENCODER_KINDS, build_model
from repro.corpus import Style, family_for_tag
from repro.judge import differential_check, seeded_inputs
from repro.lang.analysis import (
    MutationProofError, generate_dead_mutants, prove_dead,
)

__all__ = ["WorkloadError", "build_mutant_pairs", "measure_encoder",
           "run_workload", "main"]

DEFAULT_TAGS = ("A", "C", "G")


class WorkloadError(RuntimeError):
    """A mutant failed one of the two equivalence legs — the workload
    refuses to report robustness numbers against an unproven mutant."""


def build_mutant_pairs(tags=DEFAULT_TAGS, per_tag: int = 2,
                       mutants_per_program: int = 3, scale: float = 0.4,
                       seed: int = 929, inputs_per_problem: int = 8):
    """``(original, mutant, meta)`` triples, equivalence-proven twice.

    Every returned mutant has passed :func:`prove_dead` (static leg)
    and exact-stdout differential execution on ``inputs_per_problem``
    seeded judge inputs (dynamic leg). A failure of either leg raises
    :class:`WorkloadError` — bad mutants must never dilute the metric.
    """
    pairs = []
    for tag in tags:
        family = family_for_tag(tag, scale=scale, num_tests=2,
                                seed=seed % 997)
        inputs = seeded_inputs(family, count=inputs_per_problem,
                               seed=seed ^ 0xD1FF)
        rng = np.random.default_rng(seed + sum(ord(c) for c in tag))
        for index in range(per_tag):
            solution = family.emit_solution(rng, Style(rng))
            mutants = generate_dead_mutants(
                solution.source, seed=seed + index,
                count=mutants_per_program)
            for mutant in mutants:
                try:
                    prove_dead(mutant)
                except MutationProofError as error:
                    raise WorkloadError(
                        f"{tag}: static proof failed: {error}") from error
                report = differential_check(solution.source, mutant.source,
                                            inputs)
                if not report.equivalent:
                    raise WorkloadError(
                        f"{tag}: mutant diverged on seeded inputs: "
                        f"{report.failures}")
                pairs.append((solution.source, mutant.source, {
                    "tag": tag, "kind": mutant.kind,
                    "description": mutant.description,
                    "inputs_run": report.inputs_run}))
    return pairs


def measure_encoder(kind: str, pairs, threshold: float = 0.7,
                    embedding_dim: int = 16, hidden_size: int = 16,
                    seed: int = 0) -> dict:
    """Robustness metrics of one encoder kind over the mutant pairs."""
    if not pairs:
        raise ValueError("no mutant pairs to score")
    model = build_model(encoder_kind=kind, embedding_dim=embedding_dim,
                        hidden_size=hidden_size, seed=seed)
    shifts, flags, drifts, cosines = [], [], [], []
    for original, mutant, _meta in pairs:
        p = model.predict_probability(mutant, original)
        shifts.append(abs(p - 0.5))
        flags.append(p >= threshold)
        a = model.embed(original)
        b = model.embed(mutant)
        scale = float(np.linalg.norm(a)) or 1.0
        drifts.append(float(np.linalg.norm(a - b)) / scale)
        denom = (np.linalg.norm(a) * np.linalg.norm(b)) or 1.0
        cosines.append(float(np.dot(a, b) / denom))
    return {
        "pairs": len(pairs),
        "mean_abs_shift": float(np.mean(shifts)),
        "max_abs_shift": float(np.max(shifts)),
        "flag_rate": float(np.mean(flags)),
        "mean_embedding_drift": float(np.mean(drifts)),
        "mean_cosine": float(np.mean(cosines)),
    }


def run_workload(tags=DEFAULT_TAGS, per_tag: int = 2,
                 mutants_per_program: int = 3, scale: float = 0.4,
                 seed: int = 929, inputs_per_problem: int = 8,
                 encoder_kinds=ENCODER_KINDS, threshold: float = 0.7,
                 embedding_dim: int = 16, hidden_size: int = 16) -> dict:
    pairs = build_mutant_pairs(tags=tags, per_tag=per_tag,
                               mutants_per_program=mutants_per_program,
                               scale=scale, seed=seed,
                               inputs_per_problem=inputs_per_problem)
    kinds: dict[str, int] = {}
    for _, _, meta in pairs:
        kinds[meta["kind"]] = kinds.get(meta["kind"], 0) + 1
    return {
        "workload": "dead_code_mutants",
        "tags": list(tags),
        "pairs": len(pairs),
        "inputs_per_problem": inputs_per_problem,
        "mutation_kinds": kinds,
        "threshold": threshold,
        "per_encoder": {
            kind: measure_encoder(kind, pairs, threshold=threshold,
                                  embedding_dim=embedding_dim,
                                  hidden_size=hidden_size)
            for kind in encoder_kinds},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tags", nargs="+", default=list(DEFAULT_TAGS))
    parser.add_argument("--per-tag", type=int, default=2)
    parser.add_argument("--mutants", type=int, default=3)
    parser.add_argument("--scale", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=929)
    parser.add_argument("--inputs", type=int, default=8)
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (default: stdout)")
    args = parser.parse_args(argv)
    report = run_workload(tags=tuple(args.tags), per_tag=args.per_tag,
                          mutants_per_program=args.mutants,
                          scale=args.scale, seed=args.seed,
                          inputs_per_problem=args.inputs,
                          threshold=args.threshold)
    payload = json.dumps(report, indent=2)
    if args.out:
        Path(args.out).write_text(payload + "\n")
        print(f"robustness report -> {args.out}")
    else:
        print(payload)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

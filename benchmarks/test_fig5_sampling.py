"""Figure 5 + Section VI-D — data sampling and augmentation ablations.

(a) accuracy vs number of training submissions (paper: steady rise,
    diminishing returns past ~1000);
(b) accuracy vs fraction of pairs at a fixed submission count (paper:
    rapid rise, then a dip from overfitting);
(c) one-way vs two-way pair ordering (paper: two-way helps by ~2%).

At bench scale the sweeps are proportionally smaller; the shapes to
hold are the rise in (a) and two-way >= one-way - epsilon in (c). The
dip in (b) is a soft trend the paper itself calls noisy, so it is only
reported, not asserted.
"""

import pytest

from repro.experiments import run_fig5

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_fig5_sampling_and_augmentation(benchmark, table1_db, profile,
                                        results_dir):
    result = benchmark.pedantic(run_fig5, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig5", result.render())

    sizes = [n for n, _ in result.submissions_curve]
    accs = [a for _, a in result.submissions_curve]
    assert sizes == sorted(sizes)
    # Shape (a): more submissions help — the largest training set beats
    # the smallest.
    assert accs[-1] >= accs[0] - 0.02, (
        f"accuracy fell from {accs[0]:.3f} to {accs[-1]:.3f} as data grew")
    # Shape (c): two-way ordering is not worse than one-way by much.
    assert result.two_way_accuracy >= result.one_way_accuracy - 0.05
    # All runs learn something.
    assert max(accs) > 0.6

"""Figure 3 — overall evaluation and generalizability.

Trains one model per problem (A-I) plus the combined MP model, with
both encoders, and reports same-problem accuracy (the paper's line
plots) and cross-problem accuracy distributions (the boxplots).

Shape to hold: tree-LSTM embeddings beat the GCN baseline on average,
and both same-problem and cross-problem accuracies sit well above
chance — the paper's headline claim that structure predicts the sign
of the runtime delta.
"""

import numpy as np

import pytest

from repro.experiments import run_fig3

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_fig3_treelstm_vs_gcn(benchmark, table1_db, mp_db, profile,
                              results_dir):
    result = benchmark.pedantic(
        run_fig3, args=(table1_db, mp_db, profile), rounds=1, iterations=1)
    write_result(results_dir, "fig3", result.render())

    tree_mean = result.mean_same("treelstm")
    gcn_mean = result.mean_same("gcn")
    # Paper: tree-LSTM consistently outperforms GCN (73% vs 68.5% on MP).
    assert tree_mean > gcn_mean - 0.02, (
        f"tree-LSTM ({tree_mean:.3f}) should not trail GCN ({gcn_mean:.3f})")
    # Both encoders must beat chance clearly on their own problems.
    assert tree_mean > 0.6
    # Cross-problem transfer is above chance on average (generalization).
    cross = [np.mean(v) for (enc, _), v in result.cross_problem.items()
             if enc == "treelstm"]
    assert float(np.mean(cross)) > 0.55

"""Concurrent load (and chaos) driver for the serving cluster.

Boots a ``ClusterServer`` over a freshly-checkpointed small model,
hammers it from N client threads, and verifies the cluster's two hard
invariants under load:

* **zero unanswered** — every request gets exactly one reply (a result
  or a structured error), never a hang;
* **zero incorrect** — every successful reply equals the single-process
  reference answer to 1e-8.

With ``--chaos`` the run additionally (a) ``SIGKILL``\\ s one worker
process mid-load, (b) offers the pool a deterministically corrupted
checkpoint (must be rejected with zero impact), and (c) hot-swaps to a
same-weights checkpoint mid-load (must rotate with zero dropped
requests) — the CI chaos smoke job. Throughput and the final
supervisor counters are written to a JSON artifact::

    PYTHONPATH=src python benchmarks/load_cluster.py --chaos \\
        --out BENCH_PR6.json

Exit code is non-zero if any invariant is violated.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parents[1]


def build_reference(model, sources, pairs):
    embeds = {s: model.embed(s) for s in sources}
    compares = {pair: model.predict_probability(*pair) for pair in pairs}
    return embeds, compares


def make_sources(n):
    base = """
int main() {
    int n; cin >> n;
    long long s = 0;
    for (int i = 0; i < n; i++) s += i;
%s    cout << s;
    return 0;
}
"""
    return [base % ("".join(f"    s += {j} * n;\n" for j in range(k)))
            for k in range(1, n + 1)]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--requests-per-thread", type=int, default=25)
    parser.add_argument("--chaos", action="store_true",
                        help="SIGKILL a worker and inject a corrupt + a "
                             "good checkpoint swap mid-load")
    parser.add_argument("--out", type=Path, default=None,
                        help="JSON artifact path (e.g. BENCH_PR6.json)")
    parser.add_argument("--seed", type=int, default=2)
    args = parser.parse_args()

    from repro.core import build_model
    from repro.serve import checkpoint_signature, save_checkpoint
    from repro.serve.cluster import ClusterClient, ClusterServer
    from repro.serve.faults import corrupt_checkpoint
    from repro.serve.supervisor import SupervisorConfig

    model = build_model(embedding_dim=16, hidden_size=16, seed=args.seed)
    sources = make_sources(10)
    pairs = [(sources[i], sources[(i + 3) % 10]) for i in range(10)]
    embeds_ref, compares_ref = build_reference(model, sources, pairs)

    workdir = Path(tempfile.mkdtemp(prefix="repro-load-cluster-"))
    slot = save_checkpoint(model, workdir / "model.npz")
    v2 = save_checkpoint(model, workdir / "model_v2.npz",
                         extra={"tag": "load-test-v2"})
    broken = workdir / "broken.npz"
    shutil.copy(slot, broken)
    corrupt_checkpoint(broken, seed=0)

    total = args.threads * args.requests_per_thread
    results: list[list] = [[] for _ in range(args.threads)]
    failures: list[str] = []

    def load(index, address):
        try:
            with ClusterClient(address) as client:
                for step in range(args.requests_per_thread):
                    if (index + step) % 2 == 0:
                        source = sources[(index + step) % len(sources)]
                        reply = client.request(
                            {"op": "embed", "source": source}, timeout=120)
                        results[index].append(("embed", source, reply))
                    else:
                        pair = pairs[(index + step) % len(pairs)]
                        reply = client.request(
                            {"op": "compare", "first": pair[0],
                             "second": pair[1]}, timeout=120)
                        results[index].append(("compare", pair, reply))
        except Exception as error:
            failures.append(f"client {index}: {type(error).__name__}: "
                            f"{error}")

    config = SupervisorConfig(request_timeout_ms=60_000,
                              backoff_base_ms=50, backoff_cap_ms=400,
                              ping_interval_ms=200, ping_timeout_ms=500,
                              stats_poll_ms=100, seed=0)
    chaos_log: list[str] = []
    start = time.perf_counter()
    with ClusterServer(slot, workers=args.workers,
                       config=config).start() as server:
        threads = [threading.Thread(target=load, args=(i, server.address))
                   for i in range(args.threads)]
        for thread in threads:
            thread.start()
        if args.chaos:
            with ClusterClient(server.address) as admin:
                stats = admin.request({"op": "cluster_stats"},
                                      timeout=60)["stats"]
                victim = stats["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)
                chaos_log.append(f"SIGKILL worker shard="
                                 f"{victim['shard']} pid={victim['pid']}")
                reply = admin.request({"op": "swap",
                                       "model": str(broken)}, timeout=120)
                assert reply["ok"] is False \
                    and reply["code"] == "swap_rejected", reply
                chaos_log.append("corrupt checkpoint rejected (pool "
                                 "unaffected)")
                reply = admin.request({"op": "swap", "model": str(v2)},
                                      timeout=180)
                assert reply["ok"] is True, reply
                chaos_log.append(f"hot-swapped to "
                                 f"{checkpoint_signature(v2)['sha']}")
        for thread in threads:
            thread.join(timeout=300)
        wall = time.perf_counter() - start
        unanswered = total - sum(len(bucket) for bucket in results)
        hung = sum(t.is_alive() for t in threads)
        counters = server.supervisor.stats()["counters"]

    incorrect, errors = 0, 0
    for bucket in results:
        for kind, key, reply in bucket:
            if not reply.get("ok"):
                if isinstance(reply.get("code"), str):
                    errors += 1       # structured error: answered, allowed
                else:
                    incorrect += 1    # unstructured failure: not allowed
                continue
            if kind == "embed":
                good = np.allclose(reply["embedding"], embeds_ref[key],
                                   atol=1e-8)
            else:
                good = abs(reply["p_first_slower"]
                           - compares_ref[key]) <= 1e-8
            incorrect += 0 if good else 1

    answered = total - unanswered - hung
    report = {
        "pr": 6,
        "scenario": "cluster_chaos_load" if args.chaos
        else "cluster_load",
        "workers": args.workers,
        "threads": args.threads,
        "requests": total,
        "answered": answered,
        "unanswered": unanswered + hung,
        "errors": errors,
        "incorrect": incorrect,
        "wall_s": round(wall, 3),
        "throughput_rps": round(answered / wall, 1) if wall else None,
        "chaos": chaos_log,
        "client_failures": failures,
        "counters": counters,
    }
    print(json.dumps(report, indent=2))
    if args.out:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}")
    shutil.rmtree(workdir, ignore_errors=True)

    ok = (not failures and unanswered == 0 and hung == 0
          and incorrect == 0)
    if args.chaos:
        ok = ok and counters["worker_deaths"] >= 1 \
            and counters["swap_rejected"] == 1 and counters["swaps"] == 1
    print("PASS" if ok else "FAIL")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())

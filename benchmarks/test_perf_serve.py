"""Serving-path microbenchmarks: cold vs warm cache, plus the naive
per-request baseline the micro-batcher replaces.

Not a paper artifact — these quantify the `repro.serve` subsystem:

* ``cold_embed``   — fresh service, 16 distinct trees through the
  micro-batcher as fused forests (cache misses, batched encode);
* ``warm_compare`` — the steady-state serving hot path: a burst of
  compare requests whose trees are already cached (classifier GEMMs
  only);
* ``naive_predict`` — the same burst through
  ``ComparativeModel.predict_probability`` (two single-tree encodes
  per request), i.e. what every request cost before this subsystem.

The checked-in ``BENCH_PR4.json`` carries these numbers; the e2e suite
asserts warm serving beats naive by >= 3x from that artifact.
"""

import numpy as np

from benchmarks.synthetic import variants
from repro.core import build_model
from repro.serve import PredictionService

NUM_VARIANTS = 16


def _variants() -> list[str]:
    """Structurally distinct sources (no corpus build needed)."""
    return variants(NUM_VARIANTS)


def _compare_burst(sources: list[str]) -> list[tuple[str, str]]:
    """32 compare requests over the variant pool (with repeats)."""
    rng = np.random.default_rng(7)
    picks = rng.integers(0, len(sources), size=(32, 2))
    return [(sources[i], sources[j if j != i else (j + 1) % len(sources)])
            for i, j in picks]


def test_bench_serve_cold_embed(benchmark):
    """Cold cache: 16 distinct trees, batcher-fused forest encodes."""
    model = build_model(embedding_dim=16, hidden_size=16)
    sources = _variants()
    for s in sources:
        model.featurizer(s)  # parse once; featurizer is shared state

    def setup():
        return (PredictionService(model, threaded=False, max_batch=32,
                                  cache_size=1024),), {}

    def cold_embed(service):
        return service.embed_many(sources)

    result = benchmark.pedantic(cold_embed, setup=setup, rounds=5,
                                iterations=1)
    assert result.shape == (NUM_VARIANTS, 16)
    try:
        benchmark.extra_info["trees_per_sec"] = \
            NUM_VARIANTS / benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        pass


def test_bench_serve_warm_compare(benchmark):
    """Warm cache: a burst of 32 compares, zero encoder work."""
    model = build_model(embedding_dim=16, hidden_size=16)
    sources = _variants()
    burst = _compare_burst(sources)
    service = PredictionService(model, threaded=False, max_batch=32)
    service.prewarm(sources)

    def warm_burst():
        return [service.compare(a, b) for a, b in burst]

    probs = benchmark(warm_burst)
    assert len(probs) == 32 and all(0.0 < p < 1.0 for p in probs)
    assert service.stats()["cache"]["misses"] == NUM_VARIANTS  # prewarm only
    try:
        benchmark.extra_info["requests_per_sec"] = \
            len(burst) / benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        pass


def test_bench_serve_threaded_compare(benchmark):
    """The warm burst submitted from 4 client threads through the
    threaded batcher.

    This is the row the cnative backend's GIL story shows up in: its
    ctypes kernels release the GIL for the duration of every call, so
    concurrent requests overlap real encode/classifier work instead of
    time-slicing it. ``run_microbench --backends numpy64,cnative``
    stamps this as ``...threaded_compare`` and
    ``...threaded_compare[cnative]`` side by side.
    """
    from concurrent.futures import ThreadPoolExecutor

    model = build_model(embedding_dim=16, hidden_size=16)
    sources = _variants()
    burst = _compare_burst(sources)
    service = PredictionService(model, threaded=True, max_batch=32)
    service.prewarm(sources)
    pool = ThreadPoolExecutor(max_workers=4)

    def threaded_burst():
        futures = [pool.submit(service.compare, a, b) for a, b in burst]
        return [f.result() for f in futures]

    try:
        probs = benchmark(threaded_burst)
        assert len(probs) == 32 and all(0.0 < p < 1.0 for p in probs)
        try:
            benchmark.extra_info["requests_per_sec"] = \
                len(burst) / benchmark.stats.stats.mean
        except (AttributeError, TypeError):
            pass
    finally:
        pool.shutdown()
        service.close()


def test_bench_naive_predict(benchmark):
    """The same burst through per-request predict_probability."""
    model = build_model(embedding_dim=16, hidden_size=16)
    sources = _variants()
    burst = _compare_burst(sources)
    for s in sources:
        model.featurizer(s)  # warm the parse cache for a fair fight

    def naive_burst():
        return [model.predict_probability(a, b) for a, b in burst]

    probs = benchmark(naive_burst)
    assert len(probs) == 32 and all(0.0 < p < 1.0 for p in probs)
    try:
        benchmark.extra_info["requests_per_sec"] = \
            len(burst) / benchmark.stats.stats.mean
    except (AttributeError, TypeError):
        pass

"""Cross-PR perf-trend gate over the repo's ``BENCH_PR*.json`` series.

The repository carries one microbenchmark artifact per PR (written by
``benchmarks/run_microbench.py``). This script reads the **whole
series**, builds a per-benchmark history of mean times, and warns when
the newest point drifts out of the history's noise band — the
repo-level analogue of the per-change ``PerformanceGate`` that
``examples/regression_gate.py`` demonstrates on source code.

The band is robust rather than parametric: for each benchmark with
enough history, the reference is the median of all *earlier* points
and the half-width is ``max(band_mads * 1.4826 * MAD, band_floor *
median)`` — a scaled median-absolute-deviation with a relative floor
so a perfectly flat history doesn't flag 1% jitter. Regressions
(latest above the band) are warnings; improvements below the band are
reported as informational only.

Two artifact schemas feed the series: pytest-benchmark payloads (a
``benchmarks`` list of ``{name, stats.mean}``) and the cluster
chaos-load artifact (``scenario: "cluster_chaos_load"``), whose
throughput folds in as a synthetic ``cluster_chaos_load::s_per_request``
benchmark — seconds per answered request, so "latest above the band"
still reads as a regression. Unrecognized artifacts are skipped. Exit
code is 0 unless ``--strict`` is given and at least one regression was
flagged::

    python benchmarks/trend_check.py             # report only
    python benchmarks/trend_check.py --strict    # CI gate
"""

from __future__ import annotations

import argparse
import json
import re
import statistics
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
_ARTIFACT = re.compile(r"BENCH_PR(\d+)\.json$")

__all__ = ["load_series", "load_machines", "check_drift", "chaos_points",
           "main"]

#: synthetic benchmark name for the chaos-load artifact's throughput
CHAOS_BENCH = "cluster_chaos_load::s_per_request"


def chaos_points(payload: dict) -> dict[str, float]:
    """``name -> mean_seconds`` extracted from a chaos-load artifact.

    The artifact records aggregate throughput, not per-call stats;
    seconds-per-answered-request is the mean-time equivalent (bigger is
    slower, same as every other series). Prefers the direct
    ``wall_s / answered`` quotient and falls back to ``1 /
    throughput_rps`` for artifacts that only carry the rate.
    """
    if payload.get("scenario") != "cluster_chaos_load":
        return {}
    try:
        answered = float(payload["answered"])
        wall = float(payload["wall_s"])
        if answered > 0 and wall > 0:
            return {CHAOS_BENCH: wall / answered}
    except (KeyError, TypeError, ValueError):
        pass
    try:
        rate = float(payload["throughput_rps"])
        if rate > 0:
            return {CHAOS_BENCH: 1.0 / rate}
    except (KeyError, TypeError, ValueError):
        pass
    return {}


def load_series(root: Path) -> dict[str, list[tuple[int, float]]]:
    """``benchmark name -> [(pr, mean_seconds), ...]`` sorted by PR.

    Reads every ``BENCH_PR<n>.json`` under ``root``: pytest-benchmark
    payloads contribute their per-benchmark means, chaos-load payloads
    contribute :data:`CHAOS_BENCH`; anything else is ignored.
    """
    series: dict[str, list[tuple[int, float]]] = {}
    for path in sorted(Path(root).glob("BENCH_PR*.json")):
        match = _ARTIFACT.search(path.name)
        if not match:
            continue
        pr = int(match.group(1))
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        for name, mean in chaos_points(payload).items():
            series.setdefault(name, []).append((pr, mean))
        benches = payload.get("benchmarks")
        if not isinstance(benches, list):
            continue
        for bench in benches:
            try:
                name = bench["name"]
                mean = float(bench["stats"]["mean"])
            except (KeyError, TypeError, ValueError):
                continue
            series.setdefault(name, []).append((pr, mean))
    for points in series.values():
        points.sort()
    return series


def load_machines(root: Path) -> dict[int, str]:
    """``pr -> machine fingerprint`` for every stamped artifact.

    ``run_microbench.py`` stamps a ``machine.fingerprint`` string
    (hashed hostname + CPU count + numpy version) into each artifact;
    older artifacts predate the stamp and simply don't appear here.
    """
    machines: dict[int, str] = {}
    for path in sorted(Path(root).glob("BENCH_PR*.json")):
        match = _ARTIFACT.search(path.name)
        if not match:
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        machine = payload.get("machine")
        if isinstance(machine, dict):
            fingerprint = machine.get("fingerprint")
            if isinstance(fingerprint, str) and fingerprint:
                machines[int(match.group(1))] = fingerprint
    return machines


def check_drift(series: dict[str, list[tuple[int, float]]],
                min_history: int = 3, band_mads: float = 4.0,
                band_floor: float = 0.25,
                machines: dict[int, str] | None = None) -> list[dict]:
    """Findings for every benchmark whose newest point leaves the band.

    ``min_history`` earlier points are required before judging (fewer
    and the artifact is still establishing its baseline). Each finding
    carries ``kind`` (``"regression"`` or ``"improvement"``), the
    offending PR/mean, and the band it left.

    When ``machines`` is given (``pr -> fingerprint``, see
    :func:`load_machines`), each series' history is restricted to points
    produced on the **same machine** as its newest point — a hardware
    change would otherwise read as a perf cliff. A newest point with no
    fingerprint (pre-stamp artifact) keeps the full history, since
    nothing can be attributed either way.
    """
    findings = []
    for name, points in sorted(series.items()):
        if machines:
            latest_fp = machines.get(points[-1][0])
            if latest_fp is not None:
                points = [(pr, mean) for pr, mean in points
                          if machines.get(pr) == latest_fp]
        if len(points) < min_history + 1:
            continue
        history = [mean for _, mean in points[:-1]]
        latest_pr, latest = points[-1]
        median = statistics.median(history)
        mad = statistics.median(abs(m - median) for m in history)
        band = max(band_mads * 1.4826 * mad, band_floor * median)
        if latest > median + band:
            kind = "regression"
        elif latest < median - band:
            kind = "improvement"
        else:
            continue
        findings.append({
            "name": name, "kind": kind, "pr": latest_pr,
            "latest_s": latest, "median_s": median, "band_s": band,
            "ratio": latest / median if median else float("inf"),
        })
    return findings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="directory holding the BENCH_PR*.json series")
    parser.add_argument("--min-history", type=int, default=3,
                        help="earlier points required before judging")
    parser.add_argument("--band-mads", type=float, default=4.0)
    parser.add_argument("--band-floor", type=float, default=0.25,
                        help="relative floor on the band half-width")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when a regression is flagged; also "
                             "restricts each history to artifacts from "
                             "the newest point's machine")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON instead of text")
    args = parser.parse_args(argv)

    series = load_series(args.root)
    machines = load_machines(args.root) if args.strict else None
    findings = check_drift(series, min_history=args.min_history,
                           band_mads=args.band_mads,
                           band_floor=args.band_floor,
                           machines=machines)
    regressions = [f for f in findings if f["kind"] == "regression"]
    if args.json:
        print(json.dumps({"benchmarks_tracked": len(series),
                          "findings": findings}, indent=2))
    else:
        print(f"{len(series)} benchmark series tracked")
        if not findings:
            print("all benchmarks inside their noise bands")
        for f in findings:
            arrow = "slower" if f["kind"] == "regression" else "faster"
            print(f"[{f['kind'].upper()}] {f['name']} @ PR{f['pr']}: "
                  f"{f['latest_s'] * 1e3:.2f}ms vs median "
                  f"{f['median_s'] * 1e3:.2f}ms "
                  f"(x{f['ratio']:.2f}, {arrow}; band "
                  f"±{f['band_s'] * 1e3:.2f}ms)")
    return 1 if (args.strict and regressions) else 0


if __name__ == "__main__":
    raise SystemExit(main())

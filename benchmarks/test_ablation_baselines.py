"""Ablation (DESIGN.md design-choice check): learned model vs static
heuristics vs absolute-runtime regression.

This quantifies the paper's motivating comparison on *our* corpus — and
documents an honest divergence: because the synthetic slow variants
carry visibly more loop structure than the fast ones, simple static
heuristics are *competitive in-domain here* (they would not be on real
Codeforces submissions, where style noise buries such cues — the gap
the paper's learned model exists to close). Transfer across problems is
hard for every comparator trained/fit on a single problem. The bench
asserts structural validity and the in-domain learnability floor, and
*reports* the full comparison for EXPERIMENTS.md.
"""

import numpy as np

import pytest

from repro.core import (
    AbsoluteRuntimeRegressor, LoopNestingHeuristic, NodeCountHeuristic,
    WeightedConstructHeuristic, baseline_accuracy,
)
from repro.data import sample_pairs
from repro.experiments import train_problem_model
from repro.viz import table

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def run_ablation(table1_db, profile, train_tag="C", transfer_tag="A",
                 seed=0):
    subs = table1_db.submissions(train_tag)
    trained = train_problem_model(subs, profile, seed=seed, tag=train_tag)
    rng = np.random.default_rng(seed + 1)
    in_domain = sample_pairs(trained.test_submissions, profile.eval_pairs, rng)
    transfer = sample_pairs(table1_db.submissions(transfer_tag),
                            profile.eval_pairs, rng)

    regressor = AbsoluteRuntimeRegressor().fit(trained.train_submissions)
    contenders = {
        "tree-LSTM (learned)": trained.trainer.model,
        "node-count heuristic": NodeCountHeuristic(),
        "loop-nesting heuristic": LoopNestingHeuristic(),
        "weighted constructs": WeightedConstructHeuristic(),
        "absolute-runtime regressor": regressor,
    }
    rows = {}
    for name, comparator in contenders.items():
        rows[name] = (baseline_accuracy(comparator, in_domain),
                      baseline_accuracy(comparator, transfer))
    return rows


def test_ablation_learned_vs_baselines(benchmark, table1_db, profile,
                                       results_dir):
    rows = benchmark.pedantic(run_ablation, args=(table1_db, profile),
                              rounds=1, iterations=1)
    rendered = table(
        ["comparator", "in-domain acc (C)", "transfer acc (A)"],
        [[name, f"{in_acc:.3f}", f"tr {tr_acc:.3f}"]
         for name, (in_acc, tr_acc) in rows.items()])
    write_result(results_dir, "ablation_baselines", rendered)

    for name, (in_acc, tr_acc) in rows.items():
        assert 0.0 <= in_acc <= 1.0 and 0.0 <= tr_acc <= 1.0, name
    learned_in, _ = rows["tree-LSTM (learned)"]
    # The learned model must clear the in-domain learnability floor.
    assert learned_in > 0.6
    # The absolute-runtime regressor works in-domain (it can memorize
    # this problem's runtime range) — the comparison point the paper's
    # related work establishes.
    regressor_in, _ = rows["absolute-runtime regressor"]
    assert regressor_in > 0.6

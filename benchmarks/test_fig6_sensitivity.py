"""Figure 6 — prediction sensitivity to the runtime gap (A, B, C).

Shape to hold: restricting evaluation to pairs whose runtime difference
exceeds a growing threshold increases accuracy — large differences come
with clearer structural signals (paper: accuracy approaches 1.0 for
second-scale gaps).
"""

import numpy as np

import pytest

from repro.experiments import run_fig6

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_fig6_gap_sensitivity(benchmark, table1_db, profile, results_dir):
    result = benchmark.pedantic(run_fig6, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "fig6", result.render())

    improvements = []
    for tag, curve in result.curves.items():
        valid = [(t, acc, n) for t, acc, n in curve if n >= 5]
        assert valid, f"no populated thresholds for {tag}"
        base_acc = valid[0][1]
        top_acc = valid[-1][1]
        improvements.append(top_acc - base_acc)
        assert top_acc > 0.55, f"{tag}: even large gaps are unpredictable"
    # On average across problems, accuracy improves with the gap.
    assert float(np.mean(improvements)) >= -0.02

"""Section V-C — hyper-parameter tuning with the Optuna stand-in.

Runs a small TPE-lite study over GCN depth/width and compares the best
GCN against the default tree-LSTM. Shape to hold (paper: best GCN 68.5%
vs tree-LSTM 73%): even a tuned GCN does not decisively beat the
tree-LSTM.
"""

import pytest

from repro.experiments import run_hpo

from .conftest import write_result

# Builds/loads the full bench corpora and trains real models: minutes on
# a cold cache, so excluded from the CI benchmark smoke pass (-m "not slow").
pytestmark = pytest.mark.slow


def test_hpo_gcn_vs_treelstm(benchmark, table1_db, profile, results_dir):
    result = benchmark.pedantic(run_hpo, args=(table1_db, profile),
                                rounds=1, iterations=1)
    write_result(results_dir, "hpo", result.render())

    assert result.trials == 6
    assert set(result.best_gcn_params) == {"layers", "hidden"}
    assert 0.0 <= result.best_gcn_accuracy <= 1.0
    # The paper's shape: tuned GCN does not decisively beat tree-LSTM.
    assert result.treelstm_accuracy >= result.best_gcn_accuracy - 0.10

"""Dump the perf microbenchmarks to a JSON artifact at the repo root.

Runs ``benchmarks/test_perf_microbench.py`` and
``benchmarks/test_perf_serve.py`` under pytest-benchmark and writes
the machine-readable results to ``BENCH_PR<n>.json`` so the repository
carries a perf trajectory across PRs::

    python benchmarks/run_microbench.py            # -> BENCH_PR1.json
    python benchmarks/run_microbench.py --pr 2     # -> BENCH_PR2.json

The first corpus build takes a couple of minutes; it is cached under
``.corpus_cache/`` and subsequent runs reload in milliseconds.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, default=1,
                        help="PR number used in the artifact name")
    parser.add_argument("--out", type=Path, default=None,
                        help="explicit output path (overrides --pr)")
    args = parser.parse_args()
    out = args.out or REPO_ROOT / f"BENCH_PR{args.pr}.json"

    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    cmd = [sys.executable, "-m", "pytest",
           str(REPO_ROOT / "benchmarks" / "test_perf_microbench.py"),
           str(REPO_ROOT / "benchmarks" / "test_perf_serve.py"),
           "-q", f"--benchmark-json={out}"]
    print("+", " ".join(cmd))
    result = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if result.returncode == 0 and out.exists():
        print(f"wrote {out}")
    return result.returncode


if __name__ == "__main__":
    raise SystemExit(main())

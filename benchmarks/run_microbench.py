"""Dump the perf microbenchmarks to a JSON artifact at the repo root.

Runs ``benchmarks/test_perf_microbench.py`` and
``benchmarks/test_perf_serve.py`` under pytest-benchmark and writes
the machine-readable results to ``BENCH_PR<n>.json`` so the repository
carries a perf trajectory across PRs::

    python benchmarks/run_microbench.py            # -> BENCH_PR1.json
    python benchmarks/run_microbench.py --pr 2     # -> BENCH_PR2.json

``--backends`` adds an A/B axis over the kernel backends: each named
backend gets its own pytest pass (selected through ``REPRO_BACKEND``),
and the merged artifact tags every non-default backend's entries as
``test_name[backend]`` — the default backend keeps the bare names so
the cross-PR trend series (see ``benchmarks/trend_check.py``) stays
contiguous::

    python benchmarks/run_microbench.py --pr 7 --backends numpy64,numpy32

Backends that cannot run here (e.g. ``numba`` without the dependency)
are skipped with a notice instead of silently benchmarking the
fallback. The first corpus build takes a couple of minutes; it is
cached under ``.corpus_cache/`` and subsequent runs reload in
milliseconds.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_BACKEND = "numpy64"


def machine_fingerprint() -> dict:
    """Identity stamp for the machine that produced an artifact.

    Benchmarks from different machines are not comparable points on one
    trend line; ``trend_check.py --strict`` uses this stamp to restrict
    each series to same-machine history. The hostname is hashed — the
    artifact is committed to the repo, and the identity only needs to be
    *stable*, not readable.
    """
    import hashlib
    import socket

    import numpy

    host = hashlib.sha256(socket.gethostname().encode()).hexdigest()[:12]
    cpus = os.cpu_count() or 0
    return {"hostname_hash": host, "cpu_count": cpus,
            "numpy": numpy.__version__,
            "fingerprint": f"{host}-c{cpus}-np{numpy.__version__}"}


def _available_backends() -> list[str]:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    try:
        from repro.nn import backend as nn_backend
        return nn_backend.available_backends()
    finally:
        sys.path.pop(0)


def _run_one(backend: str, out: Path) -> int:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                               if env.get("PYTHONPATH") else "")
    env["REPRO_BACKEND"] = backend
    cmd = [sys.executable, "-m", "pytest",
           str(REPO_ROOT / "benchmarks" / "test_perf_microbench.py"),
           str(REPO_ROOT / "benchmarks" / "test_perf_serve.py"),
           "-q", f"--benchmark-json={out}"]
    print(f"+ REPRO_BACKEND={backend}", " ".join(cmd))
    return subprocess.run(cmd, cwd=REPO_ROOT, env=env).returncode


def _merge(parts: dict[str, Path], out: Path) -> None:
    merged: dict | None = None
    for backend, part in parts.items():
        payload = json.loads(part.read_text())
        for bench in payload.get("benchmarks", []):
            bench.setdefault("extra_info", {})["backend"] = backend
            if backend != DEFAULT_BACKEND:
                bench["name"] = f"{bench['name']}[{backend}]"
                bench["fullname"] = f"{bench.get('fullname', bench['name'])}" \
                                    f"[{backend}]"
        if merged is None:
            merged = payload
            merged["backends"] = list(parts)
        else:
            merged["benchmarks"].extend(payload.get("benchmarks", []))
    merged["machine"] = machine_fingerprint()
    out.write_text(json.dumps(merged, indent=2) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pr", type=int, default=1,
                        help="PR number used in the artifact name")
    parser.add_argument("--out", type=Path, default=None,
                        help="explicit output path (overrides --pr)")
    parser.add_argument("--backends", default=DEFAULT_BACKEND,
                        help="comma-separated kernel backends to A/B "
                             "(default: just the default backend)")
    args = parser.parse_args()
    out = args.out or REPO_ROOT / f"BENCH_PR{args.pr}.json"

    requested = [b.strip() for b in args.backends.split(",") if b.strip()]
    available = _available_backends()
    backends = []
    for name in dict.fromkeys(requested):
        if name in available:
            backends.append(name)
        else:
            print(f"skipping backend {name!r}: unavailable here "
                  f"(available: {', '.join(available)})")
    if not backends:
        print("no requested backend is available; nothing to run")
        return 1

    parts: dict[str, Path] = {}
    for backend in backends:
        part = out.with_suffix(f".{backend}.part.json")
        code = _run_one(backend, part)
        if code != 0 or not part.exists():
            return code or 1
        parts[backend] = part
    _merge(parts, out)
    for part in parts.values():
        part.unlink()
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

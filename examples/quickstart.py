"""Quickstart: predict which of two programs is faster — statically.

This walks the paper's whole pipeline in one file:

1. generate an annotated corpus for one problem (the simulated
   Codeforces platform judges every submission);
2. form labelled code pairs (eq. 1);
3. train the tree-LSTM comparative model;
4. ask it about two programs it has never seen.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.corpus import Collector, family_for_tag
from repro.core import ExperimentConfig, TrainConfig, run_experiment

FAST_PROGRAM = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<pair<int, int>> v(n);
    for (int i = 0; i < n; i++) {
        int a, b; cin >> a >> b;
        v[i].first = b; v[i].second = a;
    }
    sort(v.begin(), v.end());
    int taken = 0, last = -1;
    for (int i = 0; i < n; i++)
        if (v[i].second > last) { taken++; last = v[i].first; }
    cout << taken << endl;
    return 0;
}
"""

SLOW_PROGRAM = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<int> st(n, 0), en(n, 0), used(n, 0);
    for (int i = 0; i < n; i++) cin >> st[i] >> en[i];
    int taken = 0, last = -1;
    while (true) {
        int pick = -1, bestEnd = 2000000000;
        for (int j = 0; j < n; j++)
            if (used[j] == 0 && st[j] > last && en[j] < bestEnd) {
                pick = j; bestEnd = en[j];
            }
        if (pick < 0) break;
        used[pick] = 1; last = en[pick]; taken++;
    }
    cout << taken << endl;
    return 0;
}
"""


def main() -> None:
    print("== 1. building an annotated corpus (simulated judge) ==")
    family = family_for_tag("C", scale=0.4, num_tests=3)
    db = Collector(seed=7).collect([family], per_problem=28)
    subs = db.submissions("C")
    runtimes = sorted(s.mean_runtime_ms for s in subs)
    print(f"   {len(subs)} accepted submissions, runtimes "
          f"{runtimes[0]:.0f}..{runtimes[-1]:.0f} ms")

    print("== 2+3. pairing and training the tree-LSTM model ==")
    config = ExperimentConfig(
        encoder_kind="treelstm", embedding_dim=16, hidden_size=16,
        train_pairs=100, eval_pairs=80, seed=1,
        train=TrainConfig(epochs=6, batch_size=16, learning_rate=8e-3))
    result = run_experiment(subs, config)
    print(f"   held-out accuracy={result.evaluation.accuracy:.3f} "
          f"AUC={result.evaluation.auc:.3f}")

    print("== 4. asking about two unseen programs ==")
    model = result.trainer.model
    p = model.predict_probability(SLOW_PROGRAM, FAST_PROGRAM)
    print(f"   P(quadratic scan is slower than sort+sweep) = {p:.3f}")
    p_rev = model.predict_probability(FAST_PROGRAM, SLOW_PROGRAM)
    print(f"   P(sort+sweep is slower than quadratic scan) = {p_rev:.3f}")
    verdict = "correct" if p > p_rev else "NOT what we expected"
    print(f"   -> the model ranks the quadratic version slower: {verdict}")


if __name__ == "__main__":
    main()

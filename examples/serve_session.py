"""Use case: a resident prediction service inside a dev loop.

The offline CLI answers one query per process; this demo shows the
online half (:mod:`repro.serve`): train once, checkpoint, boot a
:class:`~repro.serve.PredictionService`, and stream queries at it the
way an editor plugin or CI bot would — repeated sources, reformatted
resubmissions, and candidate ranking. Afterwards the service's own
counters show what the canonical-AST cache and the forest micro-batcher
saved.

Run:  python examples/serve_session.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.corpus import Collector, family_for_tag
from repro.core import ExperimentConfig, TrainConfig, run_experiment
from repro.serve import PredictionService, save_checkpoint

BASELINE = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<int> v(n, 0);
    for (int i = 0; i < n; i++) cin >> v[i];
    sort(v.begin(), v.end());
    cout << v[n / 2] << endl;
    return 0;
}
"""

# The same program with renamed variables and shuffled whitespace:
# identical canonical AST -> cache hit, no re-encode.
BASELINE_REFORMATTED = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int count;
    cin >> count;
    vector<int> xs(count, 0);
    for (int i = 0; i < count; i++)
        cin >> xs[i];
    sort(xs.begin(), xs.end());
    cout << xs[count / 2] << endl;
    return 0;
}
"""

QUADRATIC_REWRITE = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n; cin >> n;
    vector<int> v(n, 0);
    for (int i = 0; i < n; i++) cin >> v[i];
    for (int i = 0; i < n; i++)
        for (int j = i + 1; j < n; j++)
            if (v[j] < v[i]) { int t = v[i]; v[i] = v[j]; v[j] = t; }
    cout << v[n / 2] << endl;
    return 0;
}
"""


def main() -> None:
    print("== train once ==")
    family = family_for_tag("C", scale=0.35)
    db = Collector(seed=7).collect([family], per_problem=18)
    result = run_experiment(
        db.submissions("C"),
        ExperimentConfig(train_pairs=80, eval_pairs=40, embedding_dim=16,
                         hidden_size=16,
                         train=TrainConfig(epochs=4, batch_size=16)))
    print(f"held-out accuracy: {result.evaluation.accuracy:.3f}")

    checkpoint = Path(tempfile.mkdtemp()) / "model.npz"
    save_checkpoint(result.trainer.model, checkpoint,
                    extra={"accuracy": result.evaluation.accuracy})
    print(f"checkpoint -> {checkpoint}")

    print("\n== serve a session ==")
    with PredictionService.from_checkpoint(checkpoint,
                                           threaded=False) as service:
        started = time.perf_counter()
        report = service.check_regression(BASELINE, QUADRATIC_REWRITE,
                                          threshold=0.6)
        print(f"quadratic rewrite: P(slower)={report['regression_probability']:.3f}"
              f" flagged={report['flagged']}")
        report = service.check_regression(BASELINE, BASELINE_REFORMATTED,
                                          threshold=0.6)
        print(f"reformat-only rewrite: P(slower)="
              f"{report['regression_probability']:.3f}"
              f" flagged={report['flagged']}")
        ranking = service.rank([QUADRATIC_REWRITE, BASELINE,
                                BASELINE_REFORMATTED])
        print("ranking (fastest first):",
              [entry["candidate"] for entry in ranking])
        # a burst of repeated queries: all cache hits after the first
        for _ in range(20):
            service.compare(BASELINE, QUADRATIC_REWRITE)
        elapsed = time.perf_counter() - started
        stats = service.stats()
        print(f"\n{stats['requests']['total']} requests in {elapsed*1e3:.1f} ms")
        print(f"cache: {stats['cache']['hits']} hits / "
              f"{stats['cache']['misses']} misses "
              f"(hit rate {stats['cache']['hit_rate']:.2f})")
        print(f"encoder saw {stats['encoder']['trees_encoded']} trees in "
              f"{stats['batcher']['batches']} fused batches")


if __name__ == "__main__":
    main()

"""Use case: performance-aware code review (the paper's Section I).

Trains a model once on a mixed corpus and wires it into a
:class:`~repro.core.PerformanceGate` — the "nightly test" integration
the paper proposes: every proposed code change is screened statically,
and likely regressions are flagged before any dynamic run.

The demo replays a plausible development history of one file (a range
sum utility) with three successive rewrites, two harmless and one that
silently degrades complexity.

The same gating idea applied to this repository's own performance —
flagging a PR whose microbenchmarks drift out of the historical noise
band — lives in ``benchmarks/trend_check.py``.

Run:  python examples/regression_gate.py
"""

from __future__ import annotations

from repro.corpus import Collector, mp_families
from repro.core import (
    ExperimentConfig, PerformanceGate, TrainConfig, run_experiment,
)

BASELINE = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n, q; cin >> n >> q;
    vector<int> a(n, 0);
    for (int i = 0; i < n; i++) cin >> a[i];
    vector<long long> pre(n + 1, 0);
    for (int i = 0; i < n; i++) pre[i + 1] = pre[i] + a[i];
    for (int t = 0; t < q; t++) {
        int lo, hi; cin >> lo >> hi;
        cout << pre[hi + 1] - pre[lo] << endl;
    }
    return 0;
}
"""

# Rewrite 1: style-only cleanup (renames, loop form) — should pass.
REWRITE_STYLE = """
#include <bits/stdc++.h>
using namespace std;
typedef long long ll;
int main() {
    int len, q; cin >> len >> q;
    vector<int> vals(len, 0);
    int i = 0;
    while (i < len) { cin >> vals[i]; ++i; }
    vector<ll> pre(len + 1, 0);
    for (int k = 0; k < len; ++k) pre[k + 1] = pre[k] + vals[k];
    for (int t = 0; t < q; ++t) {
        int lo, hi; cin >> lo >> hi;
        cout << pre[hi + 1] - pre[lo] << endl;
    }
    return 0;
}
"""

# Rewrite 2: drops the prefix table and loops per query — a regression.
REWRITE_REGRESSION = """
#include <bits/stdc++.h>
using namespace std;
int main() {
    int n, q; cin >> n >> q;
    vector<int> a(n, 0);
    for (int i = 0; i < n; i++) cin >> a[i];
    for (int t = 0; t < q; t++) {
        int lo, hi; cin >> lo >> hi;
        long long s = 0;
        for (int j = lo; j <= hi; j++) s += a[j];
        cout << s << endl;
    }
    return 0;
}
"""


def main() -> None:
    print("== training a screening model on a mixed problem pool ==")
    families = mp_families(count=10, scale=0.4)
    db = Collector(seed=3).collect(families, per_problem=6)
    pool = [s for tag in db.problems() for s in db.submissions(tag)]
    config = ExperimentConfig(
        embedding_dim=16, hidden_size=16, train_pairs=120, eval_pairs=80,
        seed=2, train=TrainConfig(epochs=6, batch_size=16,
                                  learning_rate=8e-3))
    result = run_experiment(pool, config)
    print(f"   screening model held-out accuracy: "
          f"{result.evaluation.accuracy:.3f}")

    gate = PerformanceGate(result.trainer.model, flag_threshold=0.55)
    history = [("style-only cleanup", REWRITE_STYLE),
               ("per-query rescan rewrite", REWRITE_REGRESSION)]
    print("== screening proposed changes against the baseline ==")
    for description, proposed in history:
        report = gate.check(BASELINE, proposed)
        status = "FLAG" if report["flagged"] else "pass"
        print(f"   [{status}] {description}: "
              f"P(regression)={report['regression_probability']:.3f}")

    style_p = gate.regression_probability(BASELINE, REWRITE_STYLE)
    slow_p = gate.regression_probability(BASELINE, REWRITE_REGRESSION)
    print(f"== ranking: regression scored "
          f"{'higher' if slow_p > style_p else 'LOWER (unexpected)'} "
          f"than the style change ({slow_p:.3f} vs {style_p:.3f}) ==")


if __name__ == "__main__":
    main()

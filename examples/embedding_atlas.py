"""Use case: inspecting what the model learned (the paper's Fig. 7).

Trains a small model on submissions from three problems, then projects
(a) the node-type embedding table and (b) per-submission code
embeddings to 2-D with the built-in t-SNE, rendering both as ASCII
scatter plots. Watch for: operators clustering away from literals in
(a); the three problems forming separate clouds in (b).

Run:  python examples/embedding_atlas.py
"""

from __future__ import annotations

from repro.corpus import Collector, family_for_tag
from repro.core import ExperimentConfig, TrainConfig, run_experiment
from repro.viz import code_embedding_map, node_embedding_atlas, scatter_plot


def main() -> None:
    print("== building corpora for problems C, F, H ==")
    tags = ("C", "F", "H")
    families = [family_for_tag(t, scale=0.35, num_tests=2) for t in tags]
    db = Collector(seed=9).collect(families, per_problem=12)
    pool = [s for t in tags for s in db.submissions(t)]

    print("== training a mixed model ==")
    config = ExperimentConfig(
        embedding_dim=16, hidden_size=16, train_pairs=100, eval_pairs=60,
        seed=6, train=TrainConfig(epochs=5, batch_size=16,
                                  learning_rate=8e-3))
    result = run_experiment(pool, config)
    model = result.trainer.model
    print(f"   mixed-pool accuracy: {result.evaluation.accuracy:.3f}")

    print("== Fig.7a: node-type embeddings by syntactic category ==")
    atlas = node_embedding_atlas(model, n_iter=250, seed=0)
    print(scatter_plot(atlas.points, atlas.categories,
                       title="node embeddings"))

    print("== Fig.7b: code embeddings by problem ==")
    groups = {t: db.submissions(t)[:10] for t in tags}
    points, labels = code_embedding_map(model, groups, n_iter=250, seed=0)
    print(scatter_plot(points, labels, title="code embeddings"))


if __name__ == "__main__":
    main()

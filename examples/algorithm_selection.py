"""Use case: selecting the best algorithm among alternatives.

The paper's first motivating use case: given several candidate
implementations of the same problem, rank them by expected performance
*without running them*. We train on one problem, then rank three unseen
candidate solutions of another problem in the same algorithmic group by
round-robin pairwise comparison — and finally reveal the judge-measured
runtimes to score the ranking.

Run:  python examples/algorithm_selection.py
"""

from __future__ import annotations

import numpy as np

from repro.corpus import Collector, family_for_tag
from repro.core import ExperimentConfig, TrainConfig, run_experiment
from repro.judge import Judge, MachineProfile


def round_robin_rank(model, sources: list[str]) -> list[int]:
    """Order candidate indices from fastest to slowest by total wins."""
    n = len(sources)
    wins = [0.0] * n
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            # P(label=1) = P(source_i slower than source_j)
            wins[j] += model.predict_probability(sources[i], sources[j])
    return sorted(range(n), key=lambda k: wins[k], reverse=True)


def main() -> None:
    print("== training on problem F (subtree sizes, DFS group) ==")
    train_family = family_for_tag("F", scale=0.4, num_tests=3)
    db = Collector(seed=5).collect([train_family], per_problem=26)
    config = ExperimentConfig(
        embedding_dim=16, hidden_size=16, train_pairs=110, eval_pairs=70,
        seed=4, train=TrainConfig(epochs=6, batch_size=16,
                                  learning_rate=8e-3))
    result = run_experiment(db.submissions("F"), config)
    print(f"   same-problem accuracy: {result.evaluation.accuracy:.3f}")

    print("== ranking unseen candidates for problem G (BFS depths) ==")
    candidate_family = family_for_tag("G", scale=1.6, num_tests=3)
    rng = np.random.default_rng(11)
    candidates = []
    while len(candidates) < 3:
        sol = candidate_family.generate(rng)
        if all(sol.variant != c[0] for c in candidates):
            candidates.append((sol.variant, sol.source))
    spec = candidate_family.spec()
    judge = Judge(machine=MachineProfile(cycles_per_ms=2000.0, seed=1),
                  time_limit_ms=spec.time_limit_ms)
    measured = [judge.judge_source(src, spec.tests).mean_runtime_ms
                for _, src in candidates]

    ranking = round_robin_rank(result.trainer.model,
                               [src for _, src in candidates])
    print("   model ranking (fastest first) vs judge-measured runtimes:")
    for place, idx in enumerate(ranking, start=1):
        print(f"   {place}. {candidates[idx][0]:<16} "
              f"measured {measured[idx]:.1f} ms")
    true_worst = int(np.argmax(measured))
    avoided = "yes" if ranking[-1] == true_worst else "no"
    print(f"   -> model ranked the measured-slowest variant last: {avoided}")
    print("   (separating two same-complexity variants is beyond static "
          "analysis; dodging the asymptotically worse one is the win)")


if __name__ == "__main__":
    main()

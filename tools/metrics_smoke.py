#!/usr/bin/env python
"""CI smoke for the scrape endpoint: boot a real 2-worker cluster via
the CLI with ``--metrics-port``, serve a handful of JSONL requests over
TCP, scrape ``/metrics`` over HTTP, and assert the request counters
moved. Exercises the full wire path a production Prometheus would see:
CLI flag -> supervisor metrics poll -> shard relabel + merge -> text
exposition.

Run from the repository root (CI wires this next to archlint)::

    PYTHONPATH=src python tools/metrics_smoke.py

Exit status 0 on success; any failure raises with a readable message.
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = str(REPO_ROOT / "src")
sys.path.insert(0, SRC)

BASE = """
int main() {
    int n; cin >> n;
    long long s = 0;
    for (int i = 0; i < n; i++) s += i;
%s    cout << s;
    return 0;
}
"""

#: structurally distinct programs (the canonical hash ignores literals)
SOURCES = [BASE % ("".join(f"    s += {j} * n;\n" for j in range(k)))
           for k in range(1, 7)]

BANNER = re.compile(r"cluster: (\d+) workers on ([\d.]+):(\d+)"
                    r".* metrics on :(\d+)")


def wait_for(predicate, timeout, message):
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() < deadline:
        last = predicate()
        if last:
            return last
        time.sleep(0.1)
    raise AssertionError(f"timed out waiting for {message}")


def scrape(port: int, path: str = "/metrics") -> str:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as response:
        assert response.status == 200, f"{url} -> {response.status}"
        return response.read().decode("utf-8")


def counter_total(text: str, name: str) -> float:
    """Sum every sample of one counter family in Prometheus text."""
    total = 0.0
    for line in text.splitlines():
        if line.startswith(name) and not line.startswith(name + "_"):
            total += float(line.rsplit(" ", 1)[1])
    return total


def main() -> int:
    from repro.core import build_model
    from repro.serve import save_checkpoint

    with tempfile.TemporaryDirectory(prefix="metrics_smoke_") as tmp:
        checkpoint = save_checkpoint(
            build_model(embedding_dim=16, hidden_size=16, seed=2),
            Path(tmp) / "model.npz")

        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--model", str(checkpoint), "--workers", "2",
             "--listen", "127.0.0.1:0", "--metrics-port", "0"],
            stderr=subprocess.PIPE, text=True, env=env, cwd=REPO_ROOT)
        try:
            def banner():
                line = proc.stderr.readline()
                if not line:
                    raise AssertionError(
                        f"server exited (rc={proc.poll()}) before its "
                        "startup banner")
                return BANNER.search(line)

            match = wait_for(banner, timeout=60,
                             message="cluster startup banner")
            host, tcp_port = match.group(2), int(match.group(3))
            metrics_port = int(match.group(4))
            print(f"cluster up: {match.group(1)} workers at "
                  f"{host}:{tcp_port}, scrape on :{metrics_port}")

            # the endpoint answers before any traffic (zeroed families)
            text = scrape(metrics_port)
            assert "# TYPE repro_cluster_shards gauge" in text, \
                "supervisor families missing from first scrape"

            with socket.create_connection((host, tcp_port),
                                          timeout=30) as conn:
                stream = conn.makefile("r", encoding="utf-8")
                for i, source in enumerate(SOURCES):
                    conn.sendall((json.dumps(
                        {"id": i, "op": "embed", "source": source})
                        + "\n").encode())
                    reply = json.loads(stream.readline())
                    assert reply["ok"], f"embed failed: {reply}"
                print(f"served {len(SOURCES)} embed requests over TCP")

                def counters_scraped():
                    served = counter_total(scrape(metrics_port),
                                           "repro_serve_requests_total")
                    return served >= len(SOURCES) and served

                served = wait_for(counters_scraped, timeout=30,
                                  message="request counters in scrape")

            text = scrape(metrics_port)
            for needle in ('repro_serve_requests_total{shard="',
                           "# TYPE repro_serve_request_latency_seconds "
                           "histogram",
                           "# TYPE repro_serve_cache_misses_total "
                           "counter"):
                assert needle in text, f"scrape is missing {needle!r}"
            snap = json.loads(scrape(metrics_port, "/metrics.json"))
            assert "repro_serve_requests_total" in snap, \
                "JSON exposition missing request counters"
            print(f"scrape OK: repro_serve_requests_total={served:g} "
                  "across shards, histogram + cache families present")
        finally:
            proc.terminate()
            try:
                proc.wait(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=15)
    print("metrics smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

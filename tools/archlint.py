#!/usr/bin/env python
"""Architecture lint: enforce the repo's layering invariants by AST.

The invariants (see ROADMAP.md "architecture invariants") are easy to
violate silently — a stray ``optimizer.step()`` in a driver quietly
forks the training loop, a hand-rolled ``reduceat`` bypasses the
backend's dtype policy, a ``time.sleep`` in a serve test reintroduces
the wall-clock flakiness the fault-plan work removed. This tool walks
every Python file with :mod:`ast` (comments and docstrings cannot trip
it) and fails CI on:

``training-loop-outside-engine``
    In ``src/``, an optimizer/scheduler ``.step()`` call or a
    ``for ... in range(...)`` epoch loop anywhere but
    ``src/repro/engine/loop.py``. All training steps through the one
    engine loop — that is what makes checkpoint/resume bitwise.
``kernel-outside-backend``
    In ``src/``, a ``reduceat`` kernel outside
    ``src/repro/nn/backend.py`` / ``src/repro/nn/_numba_kernels.py``.
    Hot kernels live behind the backend so dtype policy and JIT
    dispatch stay in one place.
``sleep-in-serve-tests``
    A ``time.sleep`` call under ``tests/serve/`` — serve tests are
    driven by seeded fault plans, not wall-clock waits. A genuinely
    bounded poll may carry a same-line ``# archlint: allow-sleep``
    pragma with a reason.
``print-outside-obs``
    A ``print(`` call in ``src/repro/serve/`` or ``src/repro/engine/``
    outside ``src/repro/obs/`` — the serving and training tiers report
    through the obs registry / structured replies, not stdout. A
    deliberate user-facing line carries ``# archlint: allow-print``.
``adhoc-counter-dict``
    A dict-literal counter store (an attribute named ``counters``,
    ``_counts``, ``flush_triggers``, … assigned ``{...}``) in
    ``src/repro/serve/`` or ``src/repro/engine/`` — counters belong on
    the :mod:`repro.obs.metrics` registry so one snapshot covers them
    all. Annotate a non-metric mapping with
    ``# archlint: allow-counter-dict``.
``native-compile-outside-cnative``
    In ``src/``, a ``ctypes`` import, a ``CDLL``/``LoadLibrary`` call,
    or a subprocess invocation carrying compiler-marker literals
    (``cc``/``gcc``/``clang``/``-shared``/``-fPIC``/``-fopenmp``)
    outside ``src/repro/nn/cnative/``. Self-compiled native code is
    confined to the cnative backend so there is exactly one build
    cache, one ABI seam, and one fallback story. A deliberate
    exception carries ``# archlint: allow-native-compile``.

Usage::

    python tools/archlint.py [--root DIR] [--json]

Exit status 0 when clean, 1 when any violation is found.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
from dataclasses import dataclass
from pathlib import Path

__all__ = ["Violation", "check_source", "scan", "main", "RULES"]

RULES = ("training-loop-outside-engine", "kernel-outside-backend",
         "sleep-in-serve-tests", "print-outside-obs",
         "adhoc-counter-dict", "native-compile-outside-cnative")

#: the one file allowed to drive optimizer steps and epoch loops
_ENGINE_LOOP = "src/repro/engine/loop.py"
#: the only homes for the reduceat kernel
_KERNEL_HOMES = frozenset({"src/repro/nn/backend.py",
                           "src/repro/nn/_numba_kernels.py"})
#: receivers whose ``.step()`` is a training-loop step
_STEP_RECEIVERS = ("opt", "sched")
#: trees whose counters must live on the obs registry (and whose
#: stdout is reserved for protocol payloads)
_OBS_DISCIPLINE_TREES = ("src/repro/serve/", "src/repro/engine/")
_OBS_HOME = "src/repro/obs/"
#: attribute names that smell like an ad-hoc counter store
_COUNTER_ATTR_MARKERS = ("counter", "_counts", "counts_",
                         "flush_triggers", "_hits", "_misses")
#: the one tree allowed to compile and dlopen native code
_CNATIVE_HOME = "src/repro/nn/cnative/"
#: string literals that mark a subprocess call as a compiler invocation
_COMPILER_LITERALS = frozenset({"cc", "gcc", "clang",
                                "-shared", "-fPIC", "-fopenmp"})
#: callable names that load a shared object
_DLOPEN_NAMES = frozenset({"CDLL", "LoadLibrary", "WinDLL", "PyDLL"})
_PRAGMA = "# archlint: allow-"


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "message": self.message}


def _receiver_name(node: ast.expr) -> str:
    """Trailing identifier of an attribute chain (``a.b.opt`` -> opt)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return ""


def _is_step_call(call: ast.Call) -> bool:
    func = call.func
    if not (isinstance(func, ast.Attribute) and func.attr == "step"):
        return False
    receiver = _receiver_name(func.value).lower()
    return any(marker in receiver for marker in _STEP_RECEIVERS)


def _is_epoch_range_loop(node: ast.For) -> bool:
    if not (isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "range"):
        return False
    target = node.target
    return isinstance(target, ast.Name) and "epoch" in target.id.lower()


def _is_sleep_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        return True
    return isinstance(func, ast.Name) and func.id == "sleep"


def _is_print_call(call: ast.Call) -> bool:
    return isinstance(call.func, ast.Name) and call.func.id == "print"


def _is_counter_dict_assign(node: ast.Assign) -> bool:
    """An attribute whose name smells like a counter store, assigned a
    dict literal / comprehension (``self.counters = {...}``). Local
    variables are fine — the rule targets *instance state* that stats()
    would have to hand-aggregate."""
    if not isinstance(node.value, (ast.Dict, ast.DictComp)):
        return False
    for target in node.targets:
        if isinstance(target, ast.Attribute):
            name = target.attr.lower()
            if any(marker in name for marker in _COUNTER_ATTR_MARKERS):
                return True
    return False


def _is_ctypes_import(node: ast.stmt) -> bool:
    if isinstance(node, ast.Import):
        return any(alias.name == "ctypes" or alias.name.startswith("ctypes.")
                   for alias in node.names)
    if isinstance(node, ast.ImportFrom):
        module = node.module or ""
        return module == "ctypes" or module.startswith("ctypes.")
    return False


def _is_dlopen_call(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr in _DLOPEN_NAMES:
        return True
    return isinstance(func, ast.Name) and func.id in _DLOPEN_NAMES


def _is_compiler_subprocess(call: ast.Call) -> bool:
    """A subprocess-style call whose arguments carry compiler markers
    (``["cc", "-shared", ...]``) — i.e. code that shells out to a C
    compiler instead of going through the cnative build module."""
    func = call.func
    name = func.attr if isinstance(func, ast.Attribute) else (
        func.id if isinstance(func, ast.Name) else "")
    if name not in ("run", "call", "check_call", "check_output", "Popen"):
        return False
    return any(isinstance(sub, ast.Constant) and isinstance(sub.value, str)
               and sub.value in _COMPILER_LITERALS
               for sub in ast.walk(call))


def _allowed(lines: list[str], lineno: int, rule_suffix: str) -> bool:
    if not 1 <= lineno <= len(lines):
        return False
    return f"{_PRAGMA}{rule_suffix}" in lines[lineno - 1]


def check_source(rel_path: str, source: str) -> list[Violation]:
    """All violations in one file, given its path relative to the root."""
    rel = Path(rel_path).as_posix()
    in_src = rel.startswith("src/")
    in_serve_tests = rel.startswith("tests/serve/")
    if not (in_src or in_serve_tests):
        return []
    try:
        tree = ast.parse(source)
    except SyntaxError as error:
        return [Violation("syntax-error", rel, error.lineno or 0,
                          str(error))]
    lines = source.splitlines()
    violations: list[Violation] = []
    for node in ast.walk(tree):
        if in_src and rel != _ENGINE_LOOP:
            if isinstance(node, ast.Call) and _is_step_call(node):
                violations.append(Violation(
                    "training-loop-outside-engine", rel, node.lineno,
                    "optimizer/scheduler .step() outside the engine "
                    "loop; route training through repro.engine"))
            if isinstance(node, ast.For) and _is_epoch_range_loop(node):
                violations.append(Violation(
                    "training-loop-outside-engine", rel, node.lineno,
                    "epoch range() loop outside the engine loop; route "
                    "training through repro.engine"))
        if in_src and rel not in _KERNEL_HOMES:
            if isinstance(node, ast.Attribute) and node.attr == "reduceat":
                violations.append(Violation(
                    "kernel-outside-backend", rel, node.lineno,
                    "reduceat kernel outside repro.nn.backend; hot "
                    "kernels go through the ops backend"))
        in_obs_discipline = (any(rel.startswith(t)
                                 for t in _OBS_DISCIPLINE_TREES)
                             and not rel.startswith(_OBS_HOME))
        if in_obs_discipline:
            if (isinstance(node, ast.Call) and _is_print_call(node)
                    and not _allowed(lines, node.lineno, "print")):
                violations.append(Violation(
                    "print-outside-obs", rel, node.lineno,
                    "print() in the serve/engine tier; report through "
                    "the obs registry or a structured reply (or "
                    "annotate with '# archlint: allow-print <reason>')"))
            if (isinstance(node, ast.Assign)
                    and _is_counter_dict_assign(node)
                    and not _allowed(lines, node.lineno, "counter-dict")):
                violations.append(Violation(
                    "adhoc-counter-dict", rel, node.lineno,
                    "ad-hoc counter dict in the serve/engine tier; put "
                    "counters on the repro.obs.metrics registry (or "
                    "annotate with "
                    "'# archlint: allow-counter-dict <reason>')"))
        if in_src and not rel.startswith(_CNATIVE_HOME):
            offending = (
                _is_ctypes_import(node) if isinstance(node, (ast.Import,
                                                             ast.ImportFrom))
                else (_is_dlopen_call(node) or _is_compiler_subprocess(node))
                if isinstance(node, ast.Call) else False)
            if offending and not _allowed(lines, node.lineno,
                                          "native-compile"):
                violations.append(Violation(
                    "native-compile-outside-cnative", rel, node.lineno,
                    "ctypes / shared-object load / compiler subprocess "
                    "outside repro.nn.cnative; self-compiled native code "
                    "lives behind the cnative backend (or annotate with "
                    "'# archlint: allow-native-compile <reason>')"))
        if in_serve_tests:
            if (isinstance(node, ast.Call) and _is_sleep_call(node)
                    and not _allowed(lines, node.lineno, "sleep")):
                violations.append(Violation(
                    "sleep-in-serve-tests", rel, node.lineno,
                    "time.sleep in a serve test; use seeded FaultPlans "
                    "(or annotate a bounded poll with "
                    "'# archlint: allow-sleep <reason>')"))
    return violations


def scan(root: Path) -> list[Violation]:
    """Scan every ``.py`` file under ``root``'s src/ and tests/serve/."""
    root = Path(root)
    violations: list[Violation] = []
    for subdir in ("src", "tests/serve"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            violations.extend(check_source(rel, path.read_text()))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: this file's parent's "
                             "parent)")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)
    root = Path(args.root) if args.root else Path(__file__).parent.parent
    violations = scan(root)
    if args.json:
        print(json.dumps([v.to_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.render())
        print(f"archlint: {len(violations)} violation(s)")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())

"""Setup shim: the offline environment lacks the ``wheel`` package, so
``pip install -e .`` cannot build an editable wheel (PEP 660). Run
``python setup.py develop`` instead; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()

"""Setup shim: the offline environment lacks the ``wheel`` package, so
``pip install -e .`` cannot build an editable wheel (PEP 660). Run
``python setup.py develop`` instead.

``package_data`` ships the cnative backend's C source
(``repro/nn/cnative/kernels.c``) inside the package — the backend
self-compiles it on first use, so an installed wheel must carry the
source next to the loader.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    package_dir={"": "src"},
    packages=find_packages("src"),
    package_data={"repro.nn.cnative": ["*.c"]},
    include_package_data=True,
)
